open Weihl_event
module Cc = Weihl_cc
module Sim = Weihl_sim
module Rng = Weihl_sim.Rng
module Workload = Weihl_sim.Workload
module Pqueue = Weihl_sim.Pqueue

type config = {
  clients : int;
  duration : int;
  op_cost : int;
  think_time : int;
  restart_backoff : int;
  max_restarts : int;
  wait_backoff : int;
  max_waits : int;
      (** retries while blocked before the transaction aborts as
          starved — bounds livelock behind an in-doubt leg *)
  activity_base : int;
  seed : int;
}

let default_config =
  {
    clients = 6;
    duration = 1500;
    op_cost = 1;
    think_time = 0;
    restart_backoff = 5;
    max_restarts = 3;
    wait_backoff = 4;
    max_waits = 50;
    activity_base = 0;
    seed = 42;
  }

type outcome = {
  committed : int;
  committed_read_only : int;
  committed_multi : int;  (** commits that ran a 2PC round (fanout >= 2) *)
  committed_single : int;  (** fast-path commits (fanout <= 1) *)
  aborted_deadlock : int;
  aborted_refused : int;
  aborted_tpc : int;  (** 2PC rounds that decided abort *)
  aborted_starved : int;
  left_in_doubt : int;  (** transactions whose 2PC round ended in-doubt *)
  gave_up : int;
  waits : int;
  restarts : int;
  multi_attempts : int;  (** multi-shard commit attempts, incl. faulty ones *)
  ticks : int;
}

let pp_outcome ppf o =
  Fmt.pf ppf
    "@[<v>committed: %d (read-only %d, 2pc %d, fast %d)@,\
     aborted: %d deadlock, %d refused, %d tpc, %d starved; in-doubt: %d@,\
     gave up: %d; waits: %d; restarts: %d; multi attempts: %d; ticks: %d@]"
    o.committed o.committed_read_only o.committed_multi o.committed_single
    o.aborted_deadlock o.aborted_refused o.aborted_tpc o.aborted_starved
    o.left_in_doubt o.gave_up o.waits o.restarts o.multi_attempts o.ticks

type client = {
  cid : int;
  mutable script : Workload.script option;
  mutable step_idx : int;
  mutable txn : Gtxn.t option;
  mutable restarts_left : int;
  mutable waits_left : int;
  mutable retry_scheduled : bool;
}

let run ?(config = default_config)
    ?(on_commit = fun group g ~nth_multi:_ -> Group.commit group g) group
    workload =
  let rng = Rng.create config.seed in
  let pq : int Pqueue.t = Pqueue.create () in
  let clients =
    Array.init config.clients (fun cid ->
        {
          cid;
          script = None;
          step_idx = 0;
          txn = None;
          restarts_left = config.max_restarts;
          waits_left = config.max_waits;
          retry_scheduled = false;
        })
  in
  let owner : (int, client) Hashtbl.t = Hashtbl.create 64 in
  let m_committed = ref 0 in
  let m_committed_ro = ref 0 in
  let m_multi = ref 0 in
  let m_single = ref 0 in
  let m_deadlock = ref 0 in
  let m_refused = ref 0 in
  let m_tpc_abort = ref 0 in
  let m_starved = ref 0 in
  let m_in_doubt = ref 0 in
  let m_gave_up = ref 0 in
  let m_waits = ref 0 in
  let m_restarts = ref 0 in
  let m_multi_attempts = ref 0 in
  let activity_counter = ref config.activity_base in
  let fresh_activity kind =
    incr activity_counter;
    match kind with
    | `Update -> Activity.update (Fmt.str "u%d" !activity_counter)
    | `Read_only -> Activity.read_only (Fmt.str "r%d" !activity_counter)
  in
  let schedule c ~time =
    if not c.retry_scheduled then begin
      c.retry_scheduled <- true;
      Pqueue.push pq ~time c.cid
    end
  in
  let drop_txn c =
    (match c.txn with
    | Some g -> Hashtbl.remove owner (Gtxn.gid g)
    | None -> ());
    c.txn <- None;
    c.step_idx <- 0;
    c.waits_left <- config.max_waits
  in
  let restart_after_abort c ~time =
    drop_txn c;
    if c.restarts_left <= 0 then begin
      incr m_gave_up;
      c.script <- None
    end
    else begin
      c.restarts_left <- c.restarts_left - 1;
      incr m_restarts
    end;
    schedule c ~time:(time + config.restart_backoff + Rng.int rng 3)
  in
  (* A transaction that ends a faulty 2PC round in-doubt is out of the
     client's hands: it stays parked in the group until a decision is
     replayed, and the client moves on. *)
  let park_in_doubt c ~time =
    incr m_in_doubt;
    drop_txn c;
    c.script <- None;
    schedule c ~time:(time + config.think_time + 1)
  in
  let break_deadlock ~time =
    match Group.find_deadlock group with
    | None -> false
    | Some cycle -> (
      let victim = Group.victim cycle in
      match Hashtbl.find_opt owner (Gtxn.gid victim) with
      | Some vc ->
        Group.abort ~reason:"deadlock" group victim;
        incr m_deadlock;
        restart_after_abort vc ~time;
        true
      | None -> false)
  in
  let finish_commit c g ~time =
    let script = Option.get c.script in
    let multi = Gtxn.fanout g >= 2 in
    if multi then incr m_multi_attempts;
    let outcome = on_commit group g ~nth_multi:!m_multi_attempts in
    (match Gtxn.status g with
    | Gtxn.Committed ->
      incr m_committed;
      (match outcome with
      | Group.Distributed _ -> incr m_multi
      | Group.Fast -> incr m_single);
      if script.Workload.kind = `Read_only then incr m_committed_ro;
      drop_txn c;
      c.script <- None;
      c.restarts_left <- config.max_restarts;
      schedule c ~time:(time + config.op_cost + config.think_time)
    | Gtxn.Aborted ->
      incr m_tpc_abort;
      restart_after_abort c ~time
    | Gtxn.In_doubt -> park_in_doubt c ~time
    | Gtxn.Active -> invalid_arg "Sharded_driver: commit left txn active")
  in
  let proceed c ~time =
    c.retry_scheduled <- false;
    if time > config.duration then ()
    else begin
      (* A shard crash may have aborted the transaction out from under
         the client; restart the script against the surviving shards. *)
      (match c.txn with
      | Some g when not (Gtxn.is_active g) -> drop_txn c
      | _ -> ());
      let script =
        match c.script with
        | Some s -> s
        | None ->
          let s = workload.Workload.generate rng in
          c.script <- Some s;
          c.step_idx <- 0;
          c.restarts_left <- config.max_restarts;
          c.waits_left <- config.max_waits;
          s
      in
      let g =
        match c.txn with
        | Some g -> g
        | None ->
          let g = Group.begin_txn group (fresh_activity script.Workload.kind) in
          c.txn <- Some g;
          Hashtbl.replace owner (Gtxn.gid g) c;
          g
      in
      match List.nth_opt script.Workload.steps c.step_idx with
      | None -> finish_commit c g ~time
      | Some step -> (
        match Group.invoke group g step.Workload.obj step.Workload.op with
        | Group.Granted v ->
          c.waits_left <- config.max_waits;
          let continue =
            match step.Workload.continue_if with
            | None -> true
            | Some pred -> pred v
          in
          if continue then begin
            c.step_idx <- c.step_idx + 1;
            if c.step_idx >= List.length script.Workload.steps then
              finish_commit c g ~time:(time + config.op_cost)
            else schedule c ~time:(time + config.op_cost)
          end
          else finish_commit c g ~time:(time + config.op_cost)
        | Group.Wait _ ->
          incr m_waits;
          if break_deadlock ~time then schedule c ~time:(time + 1)
          else if c.waits_left <= 0 then begin
            (* Blocked with no cycle to break — typically behind an
               in-doubt leg that only recovery can resolve. *)
            Group.abort ~reason:"starved" group g;
            incr m_starved;
            restart_after_abort c ~time
          end
          else begin
            c.waits_left <- c.waits_left - 1;
            schedule c ~time:(time + config.wait_backoff)
          end
        | Group.Refused _ ->
          Group.abort ~reason:"refused" group g;
          incr m_refused;
          restart_after_abort c ~time)
    end
  in
  Array.iter
    (fun c -> schedule c ~time:(Rng.int rng (config.think_time + 2)))
    clients;
  let last_time = ref 0 in
  let guard = ref 0 in
  let max_events = 200 * config.duration * config.clients in
  let rec loop () =
    incr guard;
    if !guard > max_events then ()
    else
      match Pqueue.pop pq with
      | Some (time, cid) when time <= config.duration ->
        last_time := max !last_time time;
        proceed clients.(cid) ~time;
        loop ()
      | Some _ | None -> ()
  in
  loop ();
  (* Transactions still open when the clock runs out are abandoned
     in-flight: abort the active ones so they do not linger as waiters
     (in-doubt ones stay — only a replayed decision may resolve them). *)
  Array.iter
    (fun c ->
      match c.txn with
      | Some g when Gtxn.is_active g ->
        Group.abort ~reason:"end of run" group g;
        drop_txn c
      | _ -> ())
    clients;
  {
    committed = !m_committed;
    committed_read_only = !m_committed_ro;
    committed_multi = !m_multi;
    committed_single = !m_single;
    aborted_deadlock = !m_deadlock;
    aborted_refused = !m_refused;
    aborted_tpc = !m_tpc_abort;
    aborted_starved = !m_starved;
    left_in_doubt = !m_in_doubt;
    gave_up = !m_gave_up;
    waits = !m_waits;
    restarts = !m_restarts;
    multi_attempts = !m_multi_attempts;
    ticks = max 1 !last_time;
  }
