open Weihl_event
module Cc = Weihl_cc
module Sim = Weihl_sim
module Rng = Weihl_sim.Rng
module Workload = Weihl_sim.Workload
module Pqueue = Weihl_sim.Pqueue

type config = {
  clients : int;
  duration : int;
  op_cost : int;
  think_time : int;
  restart_backoff : int;
  max_restarts : int;
  wait_backoff : int;
  max_waits : int;
      (** retries while blocked before the transaction aborts as
          starved — bounds livelock behind an in-doubt leg *)
  activity_base : int;
  seed : int;
}

let default_config =
  {
    clients = 6;
    duration = 1500;
    op_cost = 1;
    think_time = 0;
    restart_backoff = 5;
    max_restarts = 3;
    wait_backoff = 4;
    max_waits = 50;
    activity_base = 0;
    seed = 42;
  }

type outcome = {
  committed : int;
  committed_read_only : int;
  committed_multi : int;  (** commits that ran a 2PC round (fanout >= 2) *)
  committed_single : int;  (** fast-path commits (fanout <= 1) *)
  aborted_deadlock : int;
  aborted_refused : int;
  aborted_tpc : int;  (** 2PC rounds that decided abort *)
  aborted_starved : int;
  left_in_doubt : int;  (** transactions whose 2PC round ended in-doubt *)
  gave_up : int;
  waits : int;
  restarts : int;
  multi_attempts : int;  (** multi-shard commit attempts, incl. faulty ones *)
  ticks : int;
}

let pp_outcome ppf o =
  Fmt.pf ppf
    "@[<v>committed: %d (read-only %d, 2pc %d, fast %d)@,\
     aborted: %d deadlock, %d refused, %d tpc, %d starved; in-doubt: %d@,\
     gave up: %d; waits: %d; restarts: %d; multi attempts: %d; ticks: %d@]"
    o.committed o.committed_read_only o.committed_multi o.committed_single
    o.aborted_deadlock o.aborted_refused o.aborted_tpc o.aborted_starved
    o.left_in_doubt o.gave_up o.waits o.restarts o.multi_attempts o.ticks

type client = {
  cid : int;
  mutable script : Workload.script option;
  mutable step_idx : int;
  mutable txn : Gtxn.t option;
  mutable restarts_left : int;
  mutable waits_left : int;
  mutable retry_scheduled : bool;
}

let run ?(config = default_config) ?tracer
    ?(on_commit = fun group g ~nth_multi:_ -> Group.commit group g) group
    workload =
  let rng = Rng.create config.seed in
  let pq : int Pqueue.t = Pqueue.create () in
  let now = ref 0 in
  (match tracer with
  | None -> ()
  | Some st ->
    Weihl_obs.Shard_trace.set_now st (fun () -> float_of_int !now);
    Group.set_tracer group st);
  let clients =
    Array.init config.clients (fun cid ->
        {
          cid;
          script = None;
          step_idx = 0;
          txn = None;
          restarts_left = config.max_restarts;
          waits_left = config.max_waits;
          retry_scheduled = false;
        })
  in
  let owner : (int, client) Hashtbl.t = Hashtbl.create 64 in
  let m_committed = ref 0 in
  let m_committed_ro = ref 0 in
  let m_multi = ref 0 in
  let m_single = ref 0 in
  let m_deadlock = ref 0 in
  let m_refused = ref 0 in
  let m_tpc_abort = ref 0 in
  let m_starved = ref 0 in
  let m_in_doubt = ref 0 in
  let m_gave_up = ref 0 in
  let m_waits = ref 0 in
  let m_restarts = ref 0 in
  let m_multi_attempts = ref 0 in
  let activity_counter = ref config.activity_base in
  let fresh_activity kind =
    incr activity_counter;
    match kind with
    | `Update -> Activity.update (Fmt.str "u%d" !activity_counter)
    | `Read_only -> Activity.read_only (Fmt.str "r%d" !activity_counter)
  in
  let schedule c ~time =
    if not c.retry_scheduled then begin
      c.retry_scheduled <- true;
      Pqueue.push pq ~time c.cid
    end
  in
  let drop_txn c =
    (match c.txn with
    | Some g -> Hashtbl.remove owner (Gtxn.gid g)
    | None -> ());
    c.txn <- None;
    c.step_idx <- 0;
    c.waits_left <- config.max_waits
  in
  let restart_after_abort c ~time =
    drop_txn c;
    if c.restarts_left <= 0 then begin
      incr m_gave_up;
      c.script <- None
    end
    else begin
      c.restarts_left <- c.restarts_left - 1;
      incr m_restarts
    end;
    schedule c ~time:(time + config.restart_backoff + Rng.int rng 3)
  in
  (* A transaction that ends a faulty 2PC round in-doubt is out of the
     client's hands: it stays parked in the group until a decision is
     replayed, and the client moves on. *)
  let park_in_doubt c ~time =
    incr m_in_doubt;
    drop_txn c;
    c.script <- None;
    schedule c ~time:(time + config.think_time + 1)
  in
  let break_deadlock ~time =
    match Group.find_deadlock group with
    | None -> false
    | Some cycle -> (
      let victim = Group.victim cycle in
      match Hashtbl.find_opt owner (Gtxn.gid victim) with
      | Some vc ->
        Group.abort ~reason:"deadlock" group victim;
        incr m_deadlock;
        restart_after_abort vc ~time;
        true
      | None -> false)
  in
  let finish_commit c g ~time =
    let script = Option.get c.script in
    let multi = Gtxn.fanout g >= 2 in
    if multi then incr m_multi_attempts;
    let outcome = on_commit group g ~nth_multi:!m_multi_attempts in
    (match Gtxn.status g with
    | Gtxn.Committed ->
      incr m_committed;
      (match outcome with
      | Group.Distributed _ -> incr m_multi
      | Group.Fast -> incr m_single);
      if script.Workload.kind = `Read_only then incr m_committed_ro;
      drop_txn c;
      c.script <- None;
      c.restarts_left <- config.max_restarts;
      schedule c ~time:(time + config.op_cost + config.think_time)
    | Gtxn.Aborted ->
      incr m_tpc_abort;
      restart_after_abort c ~time
    | Gtxn.In_doubt -> park_in_doubt c ~time
    | Gtxn.Active -> invalid_arg "Sharded_driver: commit left txn active")
  in
  let proceed c ~time =
    c.retry_scheduled <- false;
    if time > config.duration then ()
    else begin
      (* A shard crash may have aborted the transaction out from under
         the client; restart the script against the surviving shards. *)
      (match c.txn with
      | Some g when not (Gtxn.is_active g) -> drop_txn c
      | _ -> ());
      let script =
        match c.script with
        | Some s -> s
        | None ->
          let s = workload.Workload.generate rng in
          c.script <- Some s;
          c.step_idx <- 0;
          c.restarts_left <- config.max_restarts;
          c.waits_left <- config.max_waits;
          s
      in
      let g =
        match c.txn with
        | Some g -> g
        | None ->
          let g = Group.begin_txn group (fresh_activity script.Workload.kind) in
          c.txn <- Some g;
          Hashtbl.replace owner (Gtxn.gid g) c;
          g
      in
      match List.nth_opt script.Workload.steps c.step_idx with
      | None -> finish_commit c g ~time
      | Some step -> (
        match Group.invoke group g step.Workload.obj step.Workload.op with
        | Group.Granted v ->
          c.waits_left <- config.max_waits;
          let continue =
            match step.Workload.continue_if with
            | None -> true
            | Some pred -> pred v
          in
          if continue then begin
            c.step_idx <- c.step_idx + 1;
            if c.step_idx >= List.length script.Workload.steps then
              finish_commit c g ~time:(time + config.op_cost)
            else schedule c ~time:(time + config.op_cost)
          end
          else finish_commit c g ~time:(time + config.op_cost)
        | Group.Wait _ ->
          incr m_waits;
          if break_deadlock ~time then schedule c ~time:(time + 1)
          else if c.waits_left <= 0 then begin
            (* Blocked with no cycle to break — typically behind an
               in-doubt leg that only recovery can resolve. *)
            Group.abort ~reason:"starved" group g;
            incr m_starved;
            restart_after_abort c ~time
          end
          else begin
            c.waits_left <- c.waits_left - 1;
            schedule c ~time:(time + config.wait_backoff)
          end
        | Group.Refused _ ->
          Group.abort ~reason:"refused" group g;
          incr m_refused;
          restart_after_abort c ~time)
    end
  in
  Array.iter
    (fun c -> schedule c ~time:(Rng.int rng (config.think_time + 2)))
    clients;
  let last_time = ref 0 in
  let guard = ref 0 in
  let max_events = 200 * config.duration * config.clients in
  let rec loop () =
    incr guard;
    if !guard > max_events then ()
    else
      match Pqueue.pop pq with
      | Some (time, cid) when time <= config.duration ->
        last_time := max !last_time time;
        now := max !now time;
        proceed clients.(cid) ~time;
        loop ()
      | Some _ | None -> ()
  in
  loop ();
  (* Transactions still open when the clock runs out are abandoned
     in-flight: abort the active ones so they do not linger as waiters
     (in-doubt ones stay — only a replayed decision may resolve them). *)
  Array.iter
    (fun c ->
      match c.txn with
      | Some g when Gtxn.is_active g ->
        Group.abort ~reason:"end of run" group g;
        drop_txn c
      | _ -> ())
    clients;
  {
    committed = !m_committed;
    committed_read_only = !m_committed_ro;
    committed_multi = !m_multi;
    committed_single = !m_single;
    aborted_deadlock = !m_deadlock;
    aborted_refused = !m_refused;
    aborted_tpc = !m_tpc_abort;
    aborted_starved = !m_starved;
    left_in_doubt = !m_in_doubt;
    gave_up = !m_gave_up;
    waits = !m_waits;
    restarts = !m_restarts;
    multi_attempts = !m_multi_attempts;
    ticks = max 1 !last_time;
  }

(* ------------------------------------------------------------------ *)
(* Open-loop mode: seeded Poisson arrivals at a fixed offered rate,
   independent of completions — the saturation view a closed loop
   cannot give, because closed-loop clients self-throttle behind
   contention. *)

module Metrics = Weihl_obs.Metrics

type open_config = {
  rate : float;  (** mean arrivals per tick (Poisson) *)
  o_duration : int;
  o_op_cost : int;
  o_wait_backoff : int;
  o_max_waits : int;
  o_max_restarts : int;
  window : int;  (** ticks per time-series window *)
  o_seed : int;
  o_activity_base : int;
}

let default_open_config =
  {
    rate = 0.2;
    o_duration = 2000;
    o_op_cost = 1;
    o_wait_backoff = 4;
    o_max_waits = 50;
    o_max_restarts = 3;
    window = 250;
    o_seed = 42;
    o_activity_base = 0;
  }

type window = {
  w_start : int;
  w_arrivals : int;
  w_committed : int;
  w_aborted : int;
  w_p50 : float;  (** exact, over latencies completing in the window *)
  w_p99 : float;
}

type open_outcome = {
  offered : float;  (** offered load, arrivals per 1000 ticks *)
  arrivals : int;
  o_committed : int;
  o_committed_multi : int;
  o_aborted : int;
  abort_causes : (string * int) list;  (** cause -> count, sorted *)
  o_in_doubt : int;
  in_flight_end : int;  (** jobs still open when the clock ran out *)
  windows : window list;
  shard_latency : Metrics.Histogram.t array;
      (** commit latency by home shard (first-touched shard) *)
  latency : Metrics.Histogram.t;
      (** group-wide: {!Metrics.Histogram.merge} over the shards *)
  o_ticks : int;
}

(* Exact percentile of a sorted float array (nearest rank). *)
let exact_percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    sorted.(max 0 (min (n - 1)
      (int_of_float (ceil (p /. 100. *. float_of_int n)) - 1)))

type job = {
  jid : int;
  arrival : int;
  home : int;
  j_script : Workload.script;
  mutable j_step : int;
  mutable j_txn : Gtxn.t option;
  mutable j_restarts_left : int;
  mutable j_waits_left : int;
}

let run_open ?(config = default_open_config) ?tracer group workload =
  if config.rate <= 0. then
    invalid_arg "Sharded_driver.run_open: rate must be positive";
  if config.window <= 0 then
    invalid_arg "Sharded_driver.run_open: window must be positive";
  let rng = Rng.create config.o_seed in
  let pq : int Pqueue.t = Pqueue.create () in
  let now = ref 0 in
  (match tracer with
  | None -> ()
  | Some st ->
    Weihl_obs.Shard_trace.set_now st (fun () -> float_of_int !now);
    Group.set_tracer group st);
  let shards = Group.shard_count group in
  let shard_latency =
    Array.init shards (fun _ -> Metrics.Histogram.create ())
  in
  let n_windows = (config.o_duration / config.window) + 1 in
  let w_arrivals = Array.make n_windows 0 in
  let w_committed = Array.make n_windows 0 in
  let w_aborted = Array.make n_windows 0 in
  let w_lats = Array.make n_windows [] in
  let window_of time = min (n_windows - 1) (time / config.window) in
  let jobs : (int, job) Hashtbl.t = Hashtbl.create 256 in
  let owner : (int, job) Hashtbl.t = Hashtbl.create 256 in
  let m_arrivals = ref 0 in
  let m_committed = ref 0 in
  let m_multi = ref 0 in
  let m_aborted = ref 0 in
  let m_in_doubt = ref 0 in
  let causes : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let cause name =
    Hashtbl.replace causes name
      (1 + Option.value ~default:0 (Hashtbl.find_opt causes name))
  in
  let activity_counter = ref config.o_activity_base in
  let fresh_activity kind =
    incr activity_counter;
    match kind with
    | `Update -> Activity.update (Fmt.str "u%d" !activity_counter)
    | `Read_only -> Activity.read_only (Fmt.str "r%d" !activity_counter)
  in
  (* Job ids double as queue payloads; the arrival process itself is
     the reserved payload [-1]. *)
  let next_jid = ref 0 in
  let arrival_clock = ref 0. in
  let push_next_arrival () =
    let u = Rng.float rng 1.0 in
    let dt = -.log (1. -. u) /. config.rate in
    arrival_clock := !arrival_clock +. dt;
    let time = int_of_float !arrival_clock in
    if time <= config.o_duration then Pqueue.push pq ~time (-1)
  in
  let finish_job j ~time ~committed ~why =
    (match j.j_txn with
    | Some g -> Hashtbl.remove owner (Gtxn.gid g)
    | None -> ());
    j.j_txn <- None;
    Hashtbl.remove jobs j.jid;
    let w = window_of time in
    if committed then begin
      incr m_committed;
      w_committed.(w) <- w_committed.(w) + 1;
      let lat = float_of_int (max 1 (time - j.arrival)) in
      Metrics.Histogram.observe shard_latency.(j.home) lat;
      w_lats.(w) <- lat :: w_lats.(w)
    end
    else begin
      incr m_aborted;
      w_aborted.(w) <- w_aborted.(w) + 1;
      cause why
    end
  in
  let restart_or_abandon j ~time ~why =
    (match j.j_txn with
    | Some g -> Hashtbl.remove owner (Gtxn.gid g)
    | None -> ());
    j.j_txn <- None;
    j.j_step <- 0;
    j.j_waits_left <- config.o_max_waits;
    if j.j_restarts_left <= 0 then finish_job j ~time ~committed:false ~why
    else begin
      j.j_restarts_left <- j.j_restarts_left - 1;
      Pqueue.push pq ~time:(time + config.o_wait_backoff) j.jid
    end
  in
  let break_deadlock ~time =
    match Group.find_deadlock group with
    | None -> false
    | Some cycle -> (
      let victim = Group.victim cycle in
      match Hashtbl.find_opt owner (Gtxn.gid victim) with
      | Some vj ->
        Group.abort ~reason:"deadlock" group victim;
        restart_or_abandon vj ~time ~why:"deadlock";
        true
      | None -> false)
  in
  let proceed j ~time =
    (match j.j_txn with
    | Some g when not (Gtxn.is_active g) ->
      (* A shard crash or deadlock victimization took the transaction
         down between our turns. *)
      Hashtbl.remove owner (Gtxn.gid g);
      j.j_txn <- None;
      j.j_step <- 0
    | _ -> ());
    let g =
      match j.j_txn with
      | Some g -> g
      | None ->
        let g =
          Group.begin_txn group (fresh_activity j.j_script.Workload.kind)
        in
        j.j_txn <- Some g;
        Hashtbl.replace owner (Gtxn.gid g) j;
        g
    in
    match List.nth_opt j.j_script.Workload.steps j.j_step with
    | None -> (
      let fanout = Gtxn.fanout g in
      ignore (Group.commit group g);
      match Gtxn.status g with
      | Gtxn.Committed ->
        if fanout >= 2 then incr m_multi;
        finish_job j ~time ~committed:true ~why:""
      | Gtxn.Aborted -> restart_or_abandon j ~time ~why:"tpc"
      | Gtxn.In_doubt ->
        incr m_in_doubt;
        finish_job j ~time ~committed:false ~why:"in-doubt"
      | Gtxn.Active ->
        invalid_arg "Sharded_driver.run_open: commit left txn active")
    | Some step -> (
      match Group.invoke group g step.Workload.obj step.Workload.op with
      | Group.Granted v ->
        j.j_waits_left <- config.o_max_waits;
        let continue =
          match step.Workload.continue_if with
          | None -> true
          | Some pred -> pred v
        in
        if continue then j.j_step <- j.j_step + 1
        else j.j_step <- List.length j.j_script.Workload.steps;
        Pqueue.push pq ~time:(time + config.o_op_cost) j.jid
      | Group.Wait _ ->
        if break_deadlock ~time then Pqueue.push pq ~time:(time + 1) j.jid
        else if j.j_waits_left <= 0 then begin
          Group.abort ~reason:"starved" group g;
          restart_or_abandon j ~time ~why:"starved"
        end
        else begin
          j.j_waits_left <- j.j_waits_left - 1;
          Pqueue.push pq ~time:(time + config.o_wait_backoff) j.jid
        end
      | Group.Refused _ ->
        Group.abort ~reason:"refused" group g;
        restart_or_abandon j ~time ~why:"refused")
  in
  let arrive ~time =
    let script = workload.Workload.generate rng in
    let home =
      match script.Workload.steps with
      | [] -> 0
      | step :: _ -> Group.shard_of group step.Workload.obj
    in
    let j =
      {
        jid = !next_jid;
        arrival = time;
        home;
        j_script = script;
        j_step = 0;
        j_txn = None;
        j_restarts_left = config.o_max_restarts;
        j_waits_left = config.o_max_waits;
      }
    in
    incr next_jid;
    incr m_arrivals;
    w_arrivals.(window_of time) <- w_arrivals.(window_of time) + 1;
    Hashtbl.replace jobs j.jid j;
    Pqueue.push pq ~time j.jid;
    push_next_arrival ()
  in
  push_next_arrival ();
  let last_time = ref 0 in
  let guard = ref 0 in
  let max_events =
    200 * config.o_duration
    * (1 + int_of_float (config.rate *. float_of_int config.o_duration))
  in
  let rec loop () =
    incr guard;
    if !guard > max_events then ()
    else
      match Pqueue.pop pq with
      | Some (time, payload) when time <= config.o_duration ->
        last_time := max !last_time time;
        now := max !now time;
        (if payload = -1 then arrive ~time
         else
           match Hashtbl.find_opt jobs payload with
           | Some j -> proceed j ~time
           | None -> ());
        loop ()
      | Some _ | None -> ()
  in
  loop ();
  (* Jobs still open at the end of the run: abort the active ones so
     the group quiesces; they count as in flight, not aborted. *)
  let open_jobs = Hashtbl.fold (fun _ j acc -> j :: acc) jobs [] in
  List.iter
    (fun j ->
      match j.j_txn with
      | Some g when Gtxn.is_active g -> Group.abort ~reason:"end of run" group g
      | _ -> ())
    open_jobs;
  let windows =
    List.init n_windows (fun w ->
        let sorted = Array.of_list (w_lats.(w)) in
        Array.sort Float.compare sorted;
        {
          w_start = w * config.window;
          w_arrivals = w_arrivals.(w);
          w_committed = w_committed.(w);
          w_aborted = w_aborted.(w);
          w_p50 = exact_percentile sorted 50.;
          w_p99 = exact_percentile sorted 99.;
        })
  in
  {
    offered = config.rate *. 1000.;
    arrivals = !m_arrivals;
    o_committed = !m_committed;
    o_committed_multi = !m_multi;
    o_aborted = !m_aborted;
    abort_causes =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) causes []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
    o_in_doubt = !m_in_doubt;
    in_flight_end = List.length open_jobs;
    windows;
    shard_latency;
    latency = Metrics.Histogram.merge_all (Array.to_list shard_latency);
    o_ticks = max 1 !last_time;
  }

let pp_window ppf w =
  Fmt.pf ppf "[%5d) arr %3d commit %3d abort %3d p50 %5.1f p99 %5.1f"
    w.w_start w.w_arrivals w.w_committed w.w_aborted w.w_p50 w.w_p99

let pp_open_outcome ppf o =
  Fmt.pf ppf
    "@[<v>offered %.1f/1000t: %d arrivals, %d committed (%d 2pc), %d \
     aborted, %d in-doubt, %d in flight@,\
     latency: %a@,\
     aborts: %a@,%a@]"
    o.offered o.arrivals o.o_committed o.o_committed_multi o.o_aborted
    o.o_in_doubt o.in_flight_end Metrics.Histogram.pp o.latency
    Fmt.(list ~sep:comma (pair ~sep:(any ":") string int))
    o.abort_causes
    Fmt.(list ~sep:cut pp_window)
    o.windows
