open Weihl_event
module Cc = Weihl_cc
module Workload = Weihl_sim.Workload
module Tpc = Weihl_dist.Tpc
module Plan = Weihl_fault.Plan
module Shard_plan = Weihl_fault.Shard_plan
module Fh = Weihl_fault.Harness

(* The sharded sweep exercises the banking protocols — their transfers
   touch two random accounts, so the router scatters plenty of
   multi-shard transactions.  Single-object protocols (the hot-account
   stress, the queues) never leave one shard and prove nothing here. *)
let protocol_names =
  [ "rw"; "commutativity"; "escrow"; "rw_undo"; "multiversion"; "hybrid" ]

let protocols =
  List.filter_map Fh.find_protocol protocol_names

type verdict = Converged | Corruption_detected | Diverged of string

type schedule_result = {
  plan : Shard_plan.t;
  protocol : string;
  shards : int;
  verdict : verdict;
  committed : int;  (** across both traffic phases *)
  tpc_commits : int;
  fault_injected : bool;
  crashed_shards : int;
  reinstated : int;  (** prepared legs rebuilt from WALs *)
  resolved_in_doubt : int;
  resumed_committed : int;
}

type summary = {
  schedules : int;
  converged : int;
  corruption_detected : int;
  diverged : int;
  results : schedule_result list;
}

let build (proto : Fh.protocol) ~shards ~seed =
  let group = Group.create ~policy:proto.Fh.policy ~seed ~shards () in
  let w = proto.Fh.workload () in
  List.iter (fun id -> Group.add_object group id proto.Fh.make_object)
    w.Workload.objects;
  (group, w)

(* Translate the plan's abstract fault into a concrete [Tpc.fault] for
   a transaction of the given fan-out.  Message faults apply to the
   faulty round only; the clean rounds before and after run reliably,
   so the schedule isolates one failure per run. *)
let tpc_fault_of (plan : Shard_plan.t) ~fanout =
  let msg = plan.Shard_plan.msg in
  match plan.Shard_plan.tpc with
  | Shard_plan.Clean -> ({ Tpc.no_fault with f_msg_faults = msg }, [])
  | Shard_plan.Coord_crash cp ->
    ({ Tpc.no_fault with f_coordinator_crash = cp; f_msg_faults = msg }, [])
  | Shard_plan.Part_crash (i, when_) ->
    ( {
        Tpc.no_fault with
        f_participant_crash = Some (i mod fanout, when_);
        f_msg_faults = msg;
      },
      [] )
  | Shard_plan.Part_refuses i ->
    ({ Tpc.no_fault with f_msg_faults = msg }, [ i mod fanout ])
  | Shard_plan.Partition i ->
    ( {
        Tpc.no_fault with
        f_partitions = [ (0, 1 + (i mod fanout)) ];
        f_heal_at = Some 120;
        f_msg_faults = msg;
      },
      [] )

(* ------------------------------------------------------------------ *)
(* Global-atomicity checks *)

(* All-or-nothing across shards: no activity may be committed at one
   shard and aborted at another. *)
let check_atomic_commitment group =
  let shards = Group.shard_count group in
  let hist s = Cc.System.history (Group.system group s) in
  let rec scan s =
    if s >= shards then None
    else
      let committed = History.committed (hist s) in
      let rec against s' =
        if s' >= shards then scan (s + 1)
        else
          let bad =
            Activity.Set.inter committed (History.aborted (hist s'))
          in
          match Activity.Set.choose_opt bad with
          | Some a ->
            Some
              (Fmt.str "%a committed at shard %d but aborted at shard %d"
                 Activity.pp a s s')
          | None -> against (s' + 1)
      in
      against 0
  in
  scan 0

(* Agreed timestamps: every shard that committed an activity must have
   recorded the same timestamp for it (the 2PC-agreed commit timestamp,
   or the shared initiation timestamp). *)
let check_ts_agreement group =
  let shards = Group.shard_count group in
  let tbl : (Activity.t, int * Timestamp.t option) Hashtbl.t =
    Hashtbl.create 64
  in
  let err = ref None in
  for s = 0 to shards - 1 do
    let h = Cc.System.history (Group.system group s) in
    Activity.Set.iter
      (fun a ->
        let ts = History.timestamp_of h a in
        match Hashtbl.find_opt tbl a with
        | None -> Hashtbl.replace tbl a (s, ts)
        | Some (s0, ts0) ->
          let same =
            match (ts0, ts) with
            | None, None -> true
            | Some x, Some y -> Timestamp.compare x y = 0
            | _ -> false
          in
          if (not same) && !err = None then
            err :=
              Some
                (Fmt.str
                   "%a committed with ts %a at shard %d but %a at shard %d"
                   Activity.pp a
                   Fmt.(option ~none:(any "-") Timestamp.pp)
                   ts0 s0
                   Fmt.(option ~none:(any "-") Timestamp.pp)
                   ts s))
      (History.committed h)
  done;
  !err

(* Global serializability: the merged committed projection — every
   committed global transaction's operations, in the group's
   serialization order — must replay cleanly against one combined
   fresh system holding all the objects. *)
let check_merged_replay (proto : Fh.protocol) group =
  let sys = Cc.System.create ~policy:proto.Fh.policy () in
  let w = proto.Fh.workload () in
  List.iter
    (fun id -> Cc.System.add_object sys (proto.Fh.make_object (Cc.System.log sys) id))
    w.Workload.objects;
  match Cc.Recovery.replay_txns sys (Group.committed_projection group) with
  | Ok _ -> None
  | Error f -> Some (Fmt.str "merged replay: %a" Cc.Recovery.pp_failure f)

let run_checks proto group =
  match check_atomic_commitment group with
  | Some msg -> Some msg
  | None -> (
    match check_ts_agreement group with
    | Some msg -> Some msg
    | None -> (
      let stuck = Group.in_doubt_count group in
      if stuck > 0 then
        Some (Fmt.str "%d transactions stuck in-doubt after resolution" stuck)
      else check_merged_replay proto group))

(* ------------------------------------------------------------------ *)

let run_schedule ?(quick = false) ?(shards = 3) (plan : Shard_plan.t)
    (proto : Fh.protocol) =
  let group, w = build proto ~shards ~seed:plan.Shard_plan.seed in
  let injected = ref false in
  let on_commit group g ~nth_multi =
    if (not !injected) && nth_multi = plan.Shard_plan.fault_at_commit then begin
      injected := true;
      let fault, votes_no = tpc_fault_of plan ~fanout:(Gtxn.fanout g) in
      Group.commit ~fault ~votes_no group g
    end
    else Group.commit group g
  in
  (* Phase 1: seeded traffic; the plan's fault fires inside the k-th
     multi-shard 2PC round. *)
  let config =
    {
      Sharded_driver.default_config with
      clients = 5;
      duration = (if quick then 250 else 500);
      seed = plan.Shard_plan.seed;
    }
  in
  let o1 = Sharded_driver.run ~config ~on_commit group w in
  (* Phase 2: recover every shard the fault took down, damaging the
     first victim's WAL per the plan. *)
  let crashed =
    List.filter
      (fun s -> Group.shard_crashed group s)
      (List.init shards Fun.id)
  in
  let recover () =
    List.fold_left
      (fun acc s ->
        match acc with
        | Error _ -> acc
        | Ok (first, reinstated) ->
          let text = Group.durable_shard group s in
          let text = if first then Shard_plan.corrupt plan text else text in
          (match Group.recover_shard group s text with
          | Ok report ->
            Ok
              ( false,
                reinstated + report.Cc.Recovery.shard.Cc.Recovery.reinstated )
          | Error e -> Error e))
      (Ok (true, 0))
      crashed
  in
  let result verdict ~reinstated ~resolved ~resumed =
    {
      plan;
      protocol = proto.Fh.name;
      shards;
      verdict;
      committed = o1.Sharded_driver.committed + resumed;
      tpc_commits = o1.Sharded_driver.committed_multi;
      fault_injected = !injected;
      crashed_shards = List.length crashed;
      reinstated;
      resolved_in_doubt = resolved;
      resumed_committed = resumed;
    }
  in
  match recover () with
  | Error (Cc.Recovery.Corrupt e) ->
    if plan.Shard_plan.log_fault = Plan.Pristine then
      result
        (Diverged (Fmt.str "pristine WAL rejected: %a" Cc.Wal.pp_error e))
        ~reinstated:0 ~resolved:0 ~resumed:0
    else result Corruption_detected ~reinstated:0 ~resolved:0 ~resumed:0
  | Error (Cc.Recovery.Divergent msg) ->
    result (Diverged msg) ~reinstated:0 ~resolved:0 ~resumed:0
  | Error (Cc.Recovery.Checkpoint_invalid msg) ->
    result
      (Diverged (Fmt.str "checkpoint invalid: %s" msg))
      ~reinstated:0 ~resolved:0 ~resumed:0
  | Ok (_, reinstated) -> (
    (* Phase 3: end the blocking window — replay the coordinator's
       decisions (presumed abort where it has none) into every
       surviving prepared leg. *)
    let resolved = Group.resolve_in_doubt group in
    match run_checks proto group with
    | Some msg -> result (Diverged msg) ~reinstated ~resolved ~resumed:0
    | None -> (
      (* Phase 4: resume clean traffic and re-validate the whole run. *)
      let config2 =
        {
          Sharded_driver.default_config with
          clients = 3;
          duration = (if quick then 120 else 250);
          activity_base = 100_000;
          seed = (plan.Shard_plan.seed * 31) + 7;
        }
      in
      let o2 = Sharded_driver.run ~config:config2 group w in
      let resumed = o2.Sharded_driver.committed in
      let leftover = Group.resolve_in_doubt group in
      match run_checks proto group with
      | Some msg ->
        result (Diverged msg) ~reinstated ~resolved:(resolved + leftover)
          ~resumed
      | None ->
        result Converged ~reinstated ~resolved:(resolved + leftover) ~resumed))

let run_many ?quick ?shards ~seeds () =
  let n = List.length protocols in
  let results =
    List.mapi
      (fun i seed ->
        let proto = List.nth protocols (i mod n) in
        run_schedule ?quick ?shards (Shard_plan.generate ~seed) proto)
      seeds
  in
  let count p = List.length (List.filter p results) in
  {
    schedules = List.length results;
    converged = count (fun r -> r.verdict = Converged);
    corruption_detected = count (fun r -> r.verdict = Corruption_detected);
    diverged =
      count (fun r -> match r.verdict with Diverged _ -> true | _ -> false);
    results;
  }

let divergences s =
  List.filter
    (fun r -> match r.verdict with Diverged _ -> true | _ -> false)
    s.results

(* ------------------------------------------------------------------ *)
(* Long-soak crash→recover cycles *)

type soak_config = {
  soak_seed : int;
  cycles : int;
  cycle_duration : int;  (** driver ticks of traffic per cycle *)
  soak_shards : int;
  checkpoint_every : int;
  check_merged_every : int;
      (** merged-replay cadence — the full-projection replay is
          quadratic over a long soak, the other checks run every
          cycle *)
}

let default_soak =
  {
    soak_seed = 1;
    cycles = 20;
    cycle_duration = 400;
    soak_shards = 3;
    checkpoint_every = 25;
    check_merged_every = 5;
  }

type cycle_report = {
  cycle : int;
  victim : int;
  ckpt_fault : Shard_plan.ckpt_fault;
  cycle_committed : int;  (** commits this cycle's traffic added *)
  source : Cc.Recovery.source;
  fallbacks : string list;
  wal_records : int;  (** records in the victim's (truncated) WAL *)
  replayed : int;  (** records recovery actually replayed *)
  replay_bound : int;  (** the tail length it was allowed *)
  cycle_verdict : verdict;
}

type soak_report = {
  soak_protocol : string;
  cycles_run : int;
  soak_committed : int;
  soak_diverged : int;
  bound_violations : int;
  checkpoint_recoveries : int;  (** cycles restored from a checkpoint *)
  full_replays : int;
  loud_fallbacks : int;  (** cycles whose recovery reported fallbacks *)
  cycle_reports : cycle_report list;
}

(* Compressed hours of one group's life: seeded traffic, a crash of a
   random shard at the end of every cycle — its newest checkpoint
   damaged per the cycle's plan — then checkpoint-aware recovery and
   the global-atomicity checks, on the same group, for [cycles] rounds.
   Recovery must stay bounded by the WAL tail behind the checkpoint it
   used, and damaged checkpoints must fall back *loudly* (a damaged
   file with a silent, note-free recovery counts as a divergence). *)
let run_soak ?(config = default_soak) () =
  let rng = Weihl_sim.Rng.create ((config.soak_seed * 101) + 3) in
  let n = List.length protocols in
  let proto = List.nth protocols (config.soak_seed mod n) in
  let group =
    Group.create ~policy:proto.Fh.policy ~seed:config.soak_seed
      ~shards:config.soak_shards
      ~checkpoint:
        { Group.default_checkpoint with every = config.checkpoint_every }
      ()
  in
  let w = proto.Fh.workload () in
  List.iter
    (fun id -> Group.add_object group id proto.Fh.make_object)
    w.Workload.objects;
  let reports = ref [] in
  let committed = ref 0 in
  (* A failed recovery leaves its victim down — the group cannot take
     another cycle of traffic, so the soak stops at the divergence
     instead of cascading unrelated failures after it. *)
  let halted = ref false in
  for c = 1 to config.cycles do
    if not !halted then begin
    let plan = Shard_plan.generate ~seed:((config.soak_seed * 1000) + c) in
    let dconfig =
      {
        Sharded_driver.default_config with
        clients = 4;
        duration = config.cycle_duration;
        seed = plan.Shard_plan.seed;
        activity_base = c * 10_000;
      }
    in
    let o = Sharded_driver.run ~config:dconfig group w in
    committed := !committed + o.Sharded_driver.committed;
    let victim = Weihl_sim.Rng.int rng config.soak_shards in
    let damaged =
      match plan.Shard_plan.ckpt with
      | Shard_plan.Ckpt_race ->
        ignore (Group.checkpoint_shard ~lose_marker:true group victim);
        false
      | Shard_plan.Ckpt_pristine -> false
      | Shard_plan.Ckpt_bit_flip _ | Shard_plan.Ckpt_torn _ ->
        Group.corrupt_checkpoint group victim
          ~f:(Shard_plan.corrupt_ckpt plan)
    in
    let text = Group.crash_shard group victim in
    let cycle_result source fallbacks wal_records replayed replay_bound
        cycle_verdict =
      reports :=
        {
          cycle = c;
          victim;
          ckpt_fault = plan.Shard_plan.ckpt;
          cycle_committed = o.Sharded_driver.committed;
          source;
          fallbacks;
          wal_records;
          replayed;
          replay_bound;
          cycle_verdict;
        }
        :: !reports
    in
    match Group.recover_shard group victim text with
    | Error f ->
      halted := true;
      cycle_result Cc.Recovery.Full_replay [] 0 0 0
        (Diverged (Fmt.str "recovery failed: %a" Cc.Recovery.pp_failure f))
    | Ok r ->
      let source = r.Cc.Recovery.source in
      let fallbacks = r.Cc.Recovery.fallbacks in
      let wal_records = r.Cc.Recovery.wal_records in
      let replayed = r.Cc.Recovery.replayed_records in
      let base = Cc.Wal.base text in
      let bound =
        match source with
        | Cc.Recovery.Full_replay -> wal_records
        | Cc.Recovery.From_checkpoint { covered } ->
          wal_records - (covered - base)
      in
      ignore (Group.resolve_in_doubt group);
      let structural =
        match check_atomic_commitment group with
        | Some msg -> Some msg
        | None -> (
          match check_ts_agreement group with
          | Some msg -> Some msg
          | None ->
            let stuck = Group.in_doubt_count group in
            if stuck > 0 then
              Some (Fmt.str "%d transactions stuck in-doubt" stuck)
            else if
              c mod config.check_merged_every = 0 || c = config.cycles
            then check_merged_replay proto group
            else None)
      in
      let verdict =
        match structural with
        | Some msg -> Diverged msg
        | None ->
          if replayed > bound then
            Diverged
              (Fmt.str "recovery replayed %d records, tail bound is %d"
                 replayed bound)
          else if damaged && fallbacks = [] then
            Diverged "damaged checkpoint consumed without a fallback note"
          else Converged
      in
      cycle_result source fallbacks wal_records replayed bound verdict
    end
  done;
  let reports = List.rev !reports in
  let count p = List.length (List.filter p reports) in
  {
    soak_protocol = proto.Fh.name;
    cycles_run = List.length reports;
    soak_committed = !committed;
    soak_diverged =
      count (fun r ->
          match r.cycle_verdict with Diverged _ -> true | _ -> false);
    bound_violations = count (fun r -> r.replayed > r.replay_bound);
    checkpoint_recoveries =
      count (fun r ->
          match r.source with
          | Cc.Recovery.From_checkpoint _ -> true
          | Cc.Recovery.Full_replay -> false);
    full_replays =
      count (fun r -> r.source = Cc.Recovery.Full_replay);
    loud_fallbacks = count (fun r -> r.fallbacks <> []);
    cycle_reports = reports;
  }

let soak_divergences s =
  List.filter
    (fun r -> match r.cycle_verdict with Diverged _ -> true | _ -> false)
    s.cycle_reports

let pp_verdict ppf = function
  | Converged -> Fmt.string ppf "converged"
  | Corruption_detected -> Fmt.string ppf "corruption detected"
  | Diverged msg -> Fmt.pf ppf "DIVERGED: %s" msg

let pp_result ppf r =
  Fmt.pf ppf
    "@[<h>%-14s %a → %a (committed %d, 2pc %d, crashed %d, reinstated %d, \
     resolved %d, resumed %d)@]"
    r.protocol Shard_plan.pp r.plan pp_verdict r.verdict r.committed
    r.tpc_commits r.crashed_shards r.reinstated r.resolved_in_doubt
    r.resumed_committed

let pp_summary ppf s =
  Fmt.pf ppf
    "@[<v>schedules: %d@,converged: %d@,corruption detected: %d@,diverged: %d@]"
    s.schedules s.converged s.corruption_detected s.diverged

let pp_cycle ppf r =
  Fmt.pf ppf
    "@[<h>cycle %d: shard %d down (%a) → %a, wal %d, replayed %d/%d, %a%a@]"
    r.cycle r.victim Shard_plan.pp_ckpt r.ckpt_fault Cc.Recovery.pp_source
    r.source r.wal_records r.replayed r.replay_bound pp_verdict r.cycle_verdict
    Fmt.(
      if r.fallbacks = [] then nop
      else any " [" ++ list ~sep:(any "; ") string ++ any "]")
    r.fallbacks

let pp_soak ppf s =
  Fmt.pf ppf
    "@[<v>protocol: %s@,cycles: %d@,committed: %d@,diverged: %d@,\
     bound violations: %d@,checkpoint recoveries: %d@,full replays: %d@,\
     loud fallbacks: %d@]"
    s.soak_protocol s.cycles_run s.soak_committed s.soak_diverged
    s.bound_violations s.checkpoint_recoveries s.full_replays s.loud_fallbacks
