open Weihl_event

(* FNV-1a, 32-bit: stable across runs and platforms (no Hashtbl.hash
   dependence), cheap, and well-spread on short names. *)
let hash s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0xFFFFFFFF)
    s;
  !h

let shard_of ~shards x =
  if shards <= 0 then invalid_arg "Router.shard_of: shards must be positive";
  hash (Object_id.name x) mod shards
