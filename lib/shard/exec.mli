(** Shard execution: inline (sequential, deterministic) or one worker
    domain per shard behind bounded mailboxes.

    Every touch of a shard's non-thread-safe [Cc.System.t] goes through
    {!call}/{!submit} for that shard, so the system is only ever
    accessed from its owner domain (domain confinement).  A shard's
    jobs run in submission order in both modes, so results are
    deterministic at any domain count — only wall-clock timing varies.

    [domains = 1] ({!create}'s default) short-circuits to direct calls
    on the caller's domain: exactly the pre-multicore sequential
    runtime, with no queues, no domains, and no overhead beyond a
    constructor match. *)

type t

type 'a promise

val create : ?domains:int -> shards:int -> unit -> t
(** [domains <= 1]: inline mode.  Otherwise spawns
    [min domains shards] worker domains; shard [s] is owned by worker
    [s mod domains].  @raise Invalid_argument if [shards <= 0]. *)

val domain_count : t -> int
(** Worker domains executing shard work (1 in inline mode). *)

val submit : t -> shard:int -> (unit -> 'a) -> 'a promise
(** Post a job to [shard]'s owner.  Inline mode runs it before
    returning; pool mode enqueues it on the shard's mailbox (blocking
    while the mailbox is full). *)

val await : 'a promise -> 'a
(** Join on a job's reply; re-raises the job's exception. *)

val call : t -> shard:int -> (unit -> 'a) -> 'a
(** [await (submit t ~shard f)] — a synchronous shard call. *)

val mailbox_depth : t -> shard:int -> int
(** Jobs queued on [shard]'s mailbox right now (0 in inline mode). *)

val mailbox_max_depth : t -> shard:int -> int
(** High-water mark of the shard's mailbox depth (0 in inline mode). *)

val shutdown : t -> unit
(** Close the mailboxes, drain remaining jobs and join every worker
    domain.  Idempotent; a no-op in inline mode. *)
