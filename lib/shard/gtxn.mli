(** Global transaction records: one activity running legs on several
    shards.

    A global transaction carries the group-drawn initiation timestamp
    shared by all of its legs (static policy, and read-only activities
    under hybrid), the set of shard-local {!Weihl_cc.Txn} legs it has
    touched, and its global status.  [In_doubt] is the blocked window
    of 2PC seen from the group: some leg is prepared and no decision is
    known. *)

open Weihl_event
module Cc = Weihl_cc

type status = Active | In_doubt | Committed | Aborted

type trace_ctx = { trace_id : int; parent_span : int }
(** Distributed-tracing context: the trace id shared by every span of
    this transaction and the root (coordinator) span's id.  Threaded
    through the 2PC path so per-shard and per-flight spans can point
    back at the transaction that caused them. *)

type t

val make : ?init_ts:Timestamp.t -> gid:int -> Activity.t -> t

val trace_ctx : t -> trace_ctx option
val set_trace_ctx : t -> trace_ctx -> unit
val gid : t -> int
val activity : t -> Activity.t
val is_read_only : t -> bool
val init_ts : t -> Timestamp.t option
val status : t -> status
val is_active : t -> bool
val set_status : t -> status -> unit
val commit_ts : t -> Timestamp.t option
val set_commit_ts : t -> Timestamp.t -> unit

val legs : t -> (int * Cc.Txn.t) list
(** [(shard, local leg)] pairs, oldest first. *)

val shards : t -> int list
(** Touched shards, oldest first — the 2PC participant set. *)

val leg : t -> int -> Cc.Txn.t option
val set_leg : t -> int -> Cc.Txn.t -> unit
(** Add the leg, or replace it (recovery re-links reinstated legs). *)

val fanout : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
