(** A shard group: N independent {!Weihl_cc.System} instances behind
    one transactional facade.

    Each shard owns its own event log, Lamport clock and durable WAL;
    the {!Router} places every object on exactly one shard.  A global
    transaction ({!Gtxn}) lazily opens a shard-local leg on first
    contact with each shard.  Commit takes one of two paths:

    - {e fast path} — a transaction that touched a single shard commits
      locally, with no coordination round (hybrid updates still draw
      their commit timestamp from the group clock, which keeps the
      global timestamp order of updates consistent with [precedes]);
    - {e 2PC} — a multi-shard transaction runs a real two-phase commit
      round over {!Weihl_dist.Tpc.Driver}: every leg votes after
      writing a durable [Prepared] control record, the coordinator
      chooses the commit timestamp as one past the max of the
      participants' clock readings routed through the group clock, and
      each leg applies the decision under a durable [Decided] record.

    All timestamps — static/hybrid-read-only initiation timestamps,
    fast-path hybrid commit timestamps, and 2PC-agreed commit
    timestamps — are drawn from the single group clock, so they are
    globally unique and the merged commit order is well defined.

    The group also models failure: {!crash_shard} drops a shard's
    volatile state (returning its WAL), {!recover_shard} rebuilds it
    via {!Weihl_cc.Recovery.restore_shard} — reinstating prepared
    in-doubt legs — and {!resolve_in_doubt} applies the coordinator's
    decision log (presumed abort for unrecorded transactions). *)

open Weihl_event
module Cc = Weihl_cc
module Tpc = Weihl_dist.Tpc

type t

type invoke_result =
  | Granted of Value.t
  | Wait of Gtxn.t list
      (** Blocked on the listed global transactions (waits-for edges
          translated from the home shard's local graph). *)
  | Refused of string

type commit_outcome =
  | Fast  (** single-shard local commit — no coordination round *)
  | Distributed of Tpc.decision * int list
      (** the 2PC decision record and the participant shards, in the
          order the transaction first touched them *)

type checkpoint_config = {
  every : int;
      (** auto-checkpoint a shard after every [every] commits that land
          on it *)
  retain : int;  (** checkpoint files kept per shard (the newest N) *)
  archive : bool;
      (** archive truncated WAL prefixes (see {!archived_segments})
          instead of dropping them *)
}

val default_checkpoint : checkpoint_config
(** [{ every = 100; retain = 2; archive = false }]. *)

val create :
  ?policy:Cc.System.ts_policy ->
  ?metrics:Weihl_obs.Shard_metrics.t ->
  ?seed:int ->
  ?domains:int ->
  ?group_commit:bool ->
  ?sync_cost:(unit -> unit) ->
  ?checkpoint:checkpoint_config ->
  shards:int ->
  unit ->
  t
(** A group of [shards] systems under one timestamp policy.  [seed]
    derives each 2PC round's message-simulation seed.

    [domains] (default 1) picks the execution mode: 1 runs every shard
    call inline on the caller's domain — the deterministic sequential
    semantics — while [domains > 1] spawns [min domains shards] worker
    domains, each owning its shards' systems behind a bounded mailbox
    ({!Exec}).  Per-shard execution order is identical in both modes,
    so results do not depend on the domain count — only wall-clock
    timing does.  Call {!shutdown} when done with a multi-domain group.

    [group_commit] (default false) switches the WAL durability model
    from everything-appended-is-durable to the synced-prefix model
    used by {!commit_batch}: {!durable_shard} then returns only
    records covered by a sync, and a crash loses the unsynced tail.
    [sync_cost] is the simulated device sync latency, paid once per
    per-shard sync on that shard's domain (so syncs overlap across
    domains).

    [checkpoint] turns on fuzzy checkpointing: each shard writes a
    checkpoint file after every [every] commits that land on it
    (staggered across shards so the group never checkpoints in
    lock-step), keeps the newest [retain] files, and truncates its WAL
    behind the oldest retained checkpoint's redo point.  Without it the
    group never checkpoints on its own — {!checkpoint_shard} still
    works on demand.

    @raise Invalid_argument if [shards <= 0], the metrics were built
    for a different shard count, or the checkpoint config is not
    positive. *)

val shutdown : t -> unit
(** Join the worker domains (no-op at [domains = 1]).  Required before
    process exit for a multi-domain group — idle workers block on their
    mailboxes and the runtime waits for every domain. *)

val domain_count : t -> int
(** Worker domains executing shard work (1 in inline mode). *)

val mailbox_depth : t -> int -> int
(** Requests queued on the shard's mailbox right now (0 inline). *)

val mailbox_max_depth : t -> int -> int
(** High-water mark of the shard's mailbox depth (0 inline). *)

val policy : t -> Cc.System.ts_policy
val shard_count : t -> int
val clock : t -> Cc.Lamport_clock.t

val shard_of : t -> Object_id.t -> int
(** Where the router places this object. *)

val system : t -> int -> Cc.System.t
(** The shard's current system incarnation (recovery replaces it).
    @raise Invalid_argument if the index is out of range. *)

val shard_crashed : t -> int -> bool

val add_object :
  t -> Object_id.t -> (Cc.Event_log.t -> Object_id.t -> Cc.Atomic_object.t) -> unit
(** Register the object on its home shard.  The constructor is retained
    so recovery can rebuild the shard's objects against a fresh log.
    @raise Invalid_argument on a duplicate object id. *)

val objects : t -> (Object_id.t * int) list
(** Registered objects with their home shards, sorted by id. *)

(** {1 Cross-shard tracing} *)

val set_tracer : t -> Weihl_obs.Shard_trace.t -> unit
(** Install a cross-shard trace: each shard's probe feeds its own
    timeline (pid [s + 1]); the group emits global-transaction spans,
    2PC phase spans, WAL-sync markers and message-flight flow events on
    the coordinator timeline (pid 0).  Every subsequent {!begin_txn}
    also receives a {!Gtxn.trace_ctx}.  The tracer's [now] closure
    should already point at the driver's virtual clock.
    @raise Invalid_argument if the tracer was built for a different
    shard count. *)

val clear_tracer : t -> unit
(** Remove the tracer and the per-shard probes. *)

val tracer : t -> Weihl_obs.Shard_trace.t option

(** {1 The transactional facade} *)

val begin_txn : t -> Activity.t -> Gtxn.t
(** Start a global transaction; static (and hybrid read-only)
    initiation timestamps come from the group clock and are shared by
    all of its legs. *)

val invoke : t -> Gtxn.t -> Object_id.t -> Operation.t -> invoke_result
(** Route the operation to the object's home shard, opening a leg there
    on first contact.  Refuses with ["shard down"] when the home shard
    is crashed.  @raise Invalid_argument if the transaction is not
    active or the object is unknown to its home shard. *)

val commit : ?fault:Tpc.fault -> ?votes_no:int list -> t -> Gtxn.t -> commit_outcome
(** Commit: fast path for [<= 1] legs, 2PC otherwise.  [fault] injects
    failures into the 2PC round (crashes, message faults, partitions);
    [votes_no] forces the listed participant indices (positions in
    {!Gtxn.shards} order) to vote no.  After a faulty round the
    transaction may be left {!Gtxn.status.In_doubt} (some leg prepared,
    no decision reached) and shards may be marked crashed.
    @raise Invalid_argument if the transaction is not active. *)

val abort : ?reason:string -> t -> Gtxn.t -> unit
(** Abort every active leg (legs on crashed shards are already gone).
    @raise Invalid_argument if the transaction is not active. *)

(** {1 Batched execution and group commit}

    The multicore hot path.  The coordinator groups work by home
    shard, posts one job per shard to its mailbox, and joins on all
    replies — shards execute their sub-lists in parallel on their own
    domains.  Per-shard order is the batch order, so the outcome is
    deterministic at any domain count. *)

val invoke_batch :
  t -> (Gtxn.t * Object_id.t * Operation.t) list -> invoke_result list
(** Execute one operation per entry, batched per home shard; results
    come back in entry order.  Equivalent to calling {!invoke} on each
    entry in order, except that different shards' entries run
    concurrently.  @raise Invalid_argument as {!invoke}. *)

val commit_batch : ?crash_before_sync:int list -> t -> Gtxn.t list -> unit
(** Commit a batch with group commit and batched synchronous 2PC:
    single-shard commits and multi-shard prepares execute in one job
    wave (one WAL sync per shard covers the whole batch — the
    [group_commit.batch_size] histogram observes it), the coordinator
    decides every multi-shard transaction after the vote sync, and a
    second wave applies decisions under [Decided] records and a final
    sync.  No transaction is acknowledged (status [Committed], entry
    in the committed projection) before the sync covering its records
    has returned.

    [crash_before_sync] injects the group-commit fault: the listed
    shards die after appending their wave-1 records but before the
    sync, losing the unsynced tail — their single-shard commits are
    never acknowledged, and multi-shard transactions with a leg there
    abort (no durable yes-vote).  Outcomes are read back via
    {!Gtxn.status}.  @raise Invalid_argument if a transaction is not
    active. *)

(** {1 In-doubt resolution} *)

val decision_of : t -> int -> [ `Commit of int | `Abort ] option
(** The coordinator's durable decision for a gid, if recorded. *)

val resolve_in_doubt : t -> int
(** Resolve every prepared leg on a live shard from the decision log —
    presumed abort when no decision is recorded.  This is the
    participant-recontacts-coordinator step that ends the blocking
    window.  Returns the number of legs resolved. *)

val in_doubt : t -> (int * int) list
(** Currently prepared legs on live shards as [(gid, shard)]; gid is
    [-1] for a prepared local transaction the group no longer tracks. *)

val in_doubt_count : t -> int

(** {1 Durability, checkpoints, crash, recovery} *)

val shard_records : t -> int -> Cc.Wal.record list
(** The shard's durable record stream as a list — events interleaved
    with control records, positions absolute from the first record the
    shard ever appended.  Under group commit only the synced prefix
    appears.  This is the feed a log-shipping channel cuts segments
    from: checkpoint truncation drops a prefix of {!durable_shard}'s
    {e text} but never renumbers this stream.
    @raise Invalid_argument on a bad index. *)

val durable_shard : t -> int -> string
(** The shard's WAL: its event log interleaved with the [Prepared] /
    [Decided] / [Checkpointed] control records at the positions they
    were written, framed by {!Cc.Wal.encode_records} under the label
    ["shard-<i>"].  Once checkpoint truncation has run, the text keeps
    absolute record numbering but starts at the truncation point
    (header [@<base>]). *)

val checkpoint_shard : ?lose_marker:bool -> t -> int -> int
(** Write one fuzzy checkpoint of the shard now, without stopping
    traffic: capture the durable record stream
    ({!Cc.Checkpoint.capture}), store the encoded file, append and sync
    the WAL [Checkpointed] marker that makes it official, then — once
    [retain] files exist — truncate the WAL behind the oldest retained
    checkpoint's redo point (archiving the prefix under
    [checkpoint.archive]).  Returns the new checkpoint's redo point.

    [lose_marker] (default false) simulates the crash window where the
    file reached disk but its marker never became durable: the file is
    stored, no marker is written, and no truncation happens — recovery
    must ignore the file.

    @raise Invalid_argument if the shard is out of range or crashed. *)

val checkpoint_files : t -> int -> string list
(** The shard's retained checkpoint files, newest first — what recovery
    will be offered.  @raise Invalid_argument on a bad index. *)

val corrupt_checkpoint : t -> int -> f:(string -> string) -> bool
(** Damage the shard's newest checkpoint file in place (fault
    injection).  [false] when the shard has no checkpoint.
    @raise Invalid_argument on a bad index. *)

val wal_base : t -> int -> int
(** Records truncated off the head of the shard's durable WAL — 0 until
    checkpoint truncation first runs.
    @raise Invalid_argument on a bad index. *)

val archived_segments : t -> int -> string list
(** Truncated WAL prefixes the [archive] option preserved, oldest
    first; each is a {!Cc.Wal.encode_records} text with the base of the
    range it covers.  Empty unless [checkpoint.archive] is set.
    @raise Invalid_argument on a bad index. *)

val crash_shard : t -> int -> string
(** Mark the shard crashed and return its WAL as of the crash.  Active
    global transactions with a leg there abort at their surviving
    shards; prepared legs elsewhere are untouched (their fate belongs
    to the decision log).  @raise Invalid_argument on a bad index. *)

val recover_shard :
  ?resolve:(int -> [ `Commit of Timestamp.t option | `Abort | `Unknown ]) ->
  t ->
  int ->
  string ->
  (Cc.Recovery.checkpointed_report, Cc.Recovery.failure) result
(** Rebuild a crashed shard from WAL text via
    {!Cc.Recovery.restore_checkpointed}, offering the shard's retained
    checkpoint files: the newest durable, digest-valid checkpoint is
    loaded and only the WAL tail behind its redo point is replayed;
    damaged or unmarked files fall back loudly (see the report's
    [fallbacks]) to an older checkpoint or to full replay.  Fresh
    system, objects re-created, prepared-undecided transactions
    reinstated and resolved — by default against the group's decision
    log with presumed abort.  Surviving in-doubt legs are re-linked to
    their global transactions.  The recovered incarnation starts with
    an empty checkpoint directory and an untruncated WAL.
    @raise Invalid_argument if the shard is not crashed. *)

(** {1 Cross-shard deadlock} *)

val find_deadlock : t -> Gtxn.t list option
(** A cycle in the union of the live shards' waits-for graphs, lifted
    to global transactions — cycles invisible to any single shard. *)

val victim : Gtxn.t list -> Gtxn.t
(** The youngest (highest-gid) transaction of a cycle.
    @raise Invalid_argument on an empty cycle. *)

(** {1 Global-atomicity checks} *)

val committed_projection :
  t -> (Activity.t * (Object_id.t * Operation.t * Value.t) list) list
(** Every committed global transaction with its granted operations in
    program order, sorted by the group's serialization order: commit
    order under [`None_], timestamp order under [`Static] / [`Hybrid].
    Feed it to {!Cc.Recovery.replay_txns} against one combined fresh
    system: global atomicity holds iff the merged replay validates. *)

val committed_projection_ts :
  t ->
  (Activity.t * Timestamp.t option * (Object_id.t * Operation.t * Value.t) list)
  list
(** {!committed_projection} with each transaction's serialization
    timestamp exposed (its commit timestamp for updates, initiation
    timestamp for hybrid read-only transactions; [None] under
    [`None_]).  A replica tier filters this by timestamp to obtain the
    committed state {e as of} a snapshot read's initiation time. *)

val committed_count : t -> int

val agreed_commit_ts : t -> int -> int option
(** The 2PC-agreed commit timestamp for a gid, if it committed
    distributed. *)

val tpc_rounds : t -> int
