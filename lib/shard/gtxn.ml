open Weihl_event
module Cc = Weihl_cc

type status = Active | In_doubt | Committed | Aborted

type trace_ctx = { trace_id : int; parent_span : int }

type t = {
  gid : int;
  activity : Activity.t;
  init_ts : Timestamp.t option;
  mutable status : status;
  mutable legs : (int * Cc.Txn.t) list; (* shard -> local leg, oldest first *)
  mutable commit_ts : Timestamp.t option;
  mutable trace_ctx : trace_ctx option;
}

let make ?init_ts ~gid activity =
  {
    gid;
    activity;
    init_ts;
    status = Active;
    legs = [];
    commit_ts = None;
    trace_ctx = None;
  }

let trace_ctx t = t.trace_ctx
let set_trace_ctx t ctx = t.trace_ctx <- Some ctx

let gid t = t.gid
let activity t = t.activity
let is_read_only t = Activity.is_read_only t.activity
let init_ts t = t.init_ts
let status t = t.status
let is_active t = t.status = Active
let set_status t s = t.status <- s
let commit_ts t = t.commit_ts
let set_commit_ts t ts = t.commit_ts <- Some ts
let legs t = List.rev t.legs
let shards t = List.rev_map fst t.legs
let leg t s = List.assoc_opt s t.legs

let set_leg t s txn =
  t.legs <- (s, txn) :: List.remove_assoc s t.legs

let fanout t = List.length t.legs
let equal a b = Int.equal a.gid b.gid
let compare a b = Int.compare a.gid b.gid
let pp ppf t = Fmt.pf ppf "%a#g%d" Activity.pp t.activity t.gid
