open Weihl_event
module Cc = Weihl_cc
module Tpc = Weihl_dist.Tpc
module St = Weihl_obs.Shard_trace
module Json = Weihl_obs.Json

type invoke_result =
  | Granted of Value.t
  | Wait of Gtxn.t list
  | Refused of string

type commit_outcome =
  | Fast
  | Distributed of Tpc.decision * int list (* participant shards, in order *)

type checkpoint_config = {
  every : int;  (* auto-checkpoint a shard every [every] commits *)
  retain : int;  (* checkpoint files kept per shard *)
  archive : bool;  (* keep truncated WAL prefixes instead of dropping them *)
}

let default_checkpoint = { every = 100; retain = 2; archive = false }

type t = {
  policy : Cc.System.ts_policy;
  shards : Cc.System.t array;
  clock : Cc.Lamport_clock.t; (* the group's timestamp authority *)
  mutable next_gid : int;
  gtxns : (int, Gtxn.t) Hashtbl.t; (* live or unresolved *)
  local_index : (int, Gtxn.t) Hashtbl.t array; (* per shard: leg id -> gtxn *)
  decisions : (int, [ `Commit of int | `Abort ]) Hashtbl.t;
      (* the coordinator's durable decision log; absence = presumed abort *)
  mutable commit_seq : (int * Activity.t * Timestamp.t option) list;
      (* committed gtxns, newest first, with their replay-order timestamp *)
  journal : (int, (Object_id.t * Operation.t * Value.t) list) Hashtbl.t;
      (* per gtxn, granted ops newest first — global program order,
         which per-shard logs cannot reconstruct *)
  mutable controls : (int * Cc.Wal.control) list array;
      (* per shard, newest first: (event-log length at append, record) *)
  constructors :
    (string, Object_id.t * int * (Cc.Event_log.t -> Object_id.t -> Cc.Atomic_object.t))
    Hashtbl.t;
  metrics : Weihl_obs.Shard_metrics.t option;
  mutable tracer : St.t option;
  seed : int;
  mutable rounds : int;
  crashed : bool array;
  exec : Exec.t;
      (* where shard work runs: inline (domains = 1, the deterministic
         sequential semantics) or one worker domain per shard *)
  group_commit : bool;
      (* strict durability accounting: the durable image is the synced
         prefix, not everything appended *)
  sync_cost : unit -> unit; (* device sync latency, paid per WAL sync *)
  synced_events : int array; (* per shard: event-log prefix synced *)
  synced_ctrls : int array; (* per shard: control records synced *)
  checkpoint : checkpoint_config option; (* None: never auto-checkpoint *)
  ckpts : (int * string) list array;
      (* per shard, newest first: (covered, checkpoint file) — the
         shard's checkpoint directory, bounded by [retain] *)
  wal_base : int array;
      (* per shard: records truncated off the head of the durable WAL
         (behind the oldest retained checkpoint's redo point) *)
  archived : string list array;
      (* per shard, newest first: encoded WAL segments the truncation
         step archived instead of dropping (checkpoint.archive) *)
  ckpt_countdown : int array; (* commits until the next auto checkpoint *)
}

(* Stagger the first checkpoint across shards — a fleet that
   checkpoints in lock-step stalls every shard's commit path in the
   same window.  Periods after the first stay [every] apart, so the
   offsets persist as long as the shards commit at similar rates. *)
let jittered_countdown ~every ~shards s = every + (s * every / max 1 shards)

let create ?(policy = `None_) ?metrics ?(seed = 0) ?(domains = 1)
    ?(group_commit = false) ?(sync_cost = ignore) ?checkpoint ~shards () =
  if shards <= 0 then invalid_arg "Group.create: shards must be positive";
  (match checkpoint with
  | Some c when c.every <= 0 || c.retain <= 0 ->
    invalid_arg "Group.create: checkpoint every/retain must be positive"
  | _ -> ());
  (match metrics with
  | Some m when Weihl_obs.Shard_metrics.shard_count m <> shards ->
    invalid_arg "Group.create: metrics shard count mismatch"
  | _ -> ());
  {
    policy;
    shards = Array.init shards (fun _ -> Cc.System.create ~policy ());
    clock = Cc.Lamport_clock.create ();
    next_gid = 0;
    gtxns = Hashtbl.create 64;
    local_index = Array.init shards (fun _ -> Hashtbl.create 64);
    decisions = Hashtbl.create 64;
    commit_seq = [];
    journal = Hashtbl.create 64;
    controls = Array.make shards [];
    constructors = Hashtbl.create 16;
    metrics;
    tracer = None;
    seed;
    rounds = 0;
    crashed = Array.make shards false;
    exec = Exec.create ~domains ~shards ();
    group_commit;
    sync_cost;
    synced_events = Array.make shards 0;
    synced_ctrls = Array.make shards 0;
    checkpoint;
    ckpts = Array.make shards [];
    wal_base = Array.make shards 0;
    archived = Array.make shards [];
    ckpt_countdown =
      (match checkpoint with
      | None -> Array.make shards 0
      | Some { every; _ } ->
        Array.init shards (jittered_countdown ~every ~shards));
  }

(* Every touch of a shard's (non-thread-safe) [Cc.System.t] goes
   through here, so the system only ever runs on its owner domain.  At
   [domains = 1] this is a direct call — the pre-multicore sequential
   code path.  The coordinator may still *read* shard state directly
   (clocks, log lengths, prepared lists): a shard is quiescent between
   the coordinator's joins, and the join's mutex gives the
   happens-before edge. *)
let on_shard t s f = Exec.call t.exec ~shard:s f

let shutdown t = Exec.shutdown t.exec
let domain_count t = Exec.domain_count t.exec
let mailbox_depth t s = Exec.mailbox_depth t.exec ~shard:s
let mailbox_max_depth t s = Exec.mailbox_max_depth t.exec ~shard:s
let policy t = t.policy
let shard_count t = Array.length t.shards
let shard_of t x = Router.shard_of ~shards:(Array.length t.shards) x

let system t s =
  if s < 0 || s >= Array.length t.shards then
    invalid_arg "Group.system: shard out of range";
  t.shards.(s)

let shard_crashed t s = t.crashed.(s)
let clock t = t.clock
let decision_of t gid = Hashtbl.find_opt t.decisions gid

let metrics_count f t s =
  match t.metrics with None -> () | Some m -> f m s

(* ------------------------------------------------------------------ *)
(* Cross-shard tracing *)

let install_probe t s =
  match t.tracer with
  | None -> ()
  | Some st ->
    Cc.System.set_probe t.shards.(s)
      ~now:(fun () -> St.now st)
      (St.shard_sink st s)

let set_tracer t st =
  if St.shard_count st <> Array.length t.shards then
    invalid_arg "Group.set_tracer: tracer shard count mismatch";
  t.tracer <- Some st;
  Array.iteri (fun s _ -> install_probe t s) t.shards

let clear_tracer t =
  (match t.tracer with
  | Some _ -> Array.iter Cc.System.clear_probe t.shards
  | None -> ());
  t.tracer <- None

let tracer t = t.tracer

let txn_span_name g = Fmt.str "txn %s" (Activity.name (Gtxn.activity g))

let ctx_args g =
  let base = [ ("gid", St.num (Gtxn.gid g)) ] in
  match Gtxn.trace_ctx g with
  | None -> base
  | Some { Gtxn.trace_id; parent_span } ->
    base
    @ [ ("trace_id", St.num trace_id); ("parent", St.num parent_span) ]

(* Close the coordinator-side transaction span.  Every global
   transaction gets exactly one E event on pid 0, whatever its fate. *)
let trace_end t g ~ts ~outcome =
  match t.tracer with
  | None -> ()
  | Some st ->
    St.end_span (St.coord st) ~name:(txn_span_name g) ~cat:"txn" ~ts
      ~tid:(Gtxn.gid g)
      ~args:(ctx_args g @ [ ("outcome", Json.Str outcome) ])

let add_object t x make =
  let s = shard_of t x in
  if Hashtbl.mem t.constructors (Object_id.name x) then
    invalid_arg (Fmt.str "Group.add_object: duplicate object %a" Object_id.pp x);
  Hashtbl.replace t.constructors (Object_id.name x) (x, s, make);
  on_shard t s (fun () ->
      Cc.System.add_object t.shards.(s) (make (Cc.System.log t.shards.(s)) x))

let objects t =
  Hashtbl.fold (fun _ (x, s, _) acc -> (x, s) :: acc) t.constructors []
  |> List.sort (fun (a, _) (b, _) -> Object_id.compare a b)

let begin_txn t activity =
  let init_ts =
    match t.policy with
    | `None_ -> None
    | `Static -> Some (Cc.Lamport_clock.next t.clock)
    | `Hybrid ->
      if Activity.is_read_only activity then
        Some (Cc.Lamport_clock.next t.clock)
      else None
  in
  let g = Gtxn.make ?init_ts ~gid:t.next_gid activity in
  t.next_gid <- t.next_gid + 1;
  Hashtbl.replace t.gtxns (Gtxn.gid g) g;
  (match t.tracer with
  | None -> ()
  | Some st ->
    let root = St.fresh_id st in
    Gtxn.set_trace_ctx g { Gtxn.trace_id = Gtxn.gid g; parent_span = root };
    St.begin_span (St.coord st) ~name:(txn_span_name g) ~cat:"txn"
      ~ts:(St.now st) ~tid:(Gtxn.gid g)
      ~args:
        (ctx_args g
        @ [ ("read_only", Json.Bool (Activity.is_read_only activity)) ]));
  g

let require_active g =
  if not (Gtxn.is_active g) then
    invalid_arg (Fmt.str "Group: transaction %a is not active" Gtxn.pp g)

let leg_for t g s =
  match Gtxn.leg g s with
  | Some txn -> txn
  | None ->
    let txn =
      on_shard t s (fun () ->
          Cc.System.begin_txn ?ts:(Gtxn.init_ts g) t.shards.(s) (Gtxn.activity g))
    in
    Gtxn.set_leg g s txn;
    Hashtbl.replace t.local_index.(s) (Cc.Txn.id txn) g;
    txn

let journal_append t g entry =
  let gid = Gtxn.gid g in
  let prev = Option.value ~default:[] (Hashtbl.find_opt t.journal gid) in
  Hashtbl.replace t.journal gid (entry :: prev)

let invoke t g x op =
  require_active g;
  let s = shard_of t x in
  if t.crashed.(s) then Refused "shard down"
  else
    let txn = leg_for t g s in
    match on_shard t s (fun () -> Cc.System.invoke t.shards.(s) txn x op) with
    | Cc.Atomic_object.Granted v ->
      journal_append t g (x, op, v);
      Granted v
    | Cc.Atomic_object.Wait blockers ->
      metrics_count Weihl_obs.Shard_metrics.conflict_at t s;
      Wait
        (List.filter_map
           (fun b -> Hashtbl.find_opt t.local_index.(s) (Cc.Txn.id b))
           blockers)
    | Cc.Atomic_object.Refused why -> Refused why

let drop_leg t s txn = Hashtbl.remove t.local_index.(s) (Cc.Txn.id txn)

let abort ?reason t g =
  require_active g;
  List.iter
    (fun (s, txn) ->
      if (not t.crashed.(s)) && Cc.Txn.is_active txn then begin
        on_shard t s (fun () -> Cc.System.abort ?reason t.shards.(s) txn);
        metrics_count Weihl_obs.Shard_metrics.abort_at t s
      end;
      drop_leg t s txn)
    (Gtxn.legs g);
  Gtxn.set_status g Gtxn.Aborted;
  (match t.tracer with
  | None -> ()
  | Some st ->
    trace_end t g ~ts:(St.now st)
      ~outcome:(Option.value ~default:"abort" reason));
  Hashtbl.remove t.gtxns (Gtxn.gid g);
  Hashtbl.remove t.journal (Gtxn.gid g)

(* The timestamp by which a committed transaction is ordered in the
   merged replay: commit order needs none (dynamic), static replays in
   initiation order, hybrid in timestamp order (init for read-only,
   commit for updates). *)
let order_ts t g =
  match t.policy with
  | `None_ -> None
  | `Static -> Gtxn.init_ts g
  | `Hybrid ->
    if Gtxn.is_read_only g then Gtxn.init_ts g else Gtxn.commit_ts g

let record_commit t g =
  t.commit_seq <- (Gtxn.gid g, Gtxn.activity g, order_ts t g) :: t.commit_seq

let maybe_prune t g =
  match Gtxn.status g with
  | Gtxn.Active | Gtxn.In_doubt -> ()
  | Gtxn.Committed | Gtxn.Aborted ->
    let unresolved =
      List.exists
        (fun (s, txn) -> t.crashed.(s) || Cc.Txn.is_prepared txn)
        (Gtxn.legs g)
    in
    if not unresolved then begin
      List.iter (fun (s, txn) -> drop_leg t s txn) (Gtxn.legs g);
      Hashtbl.remove t.gtxns (Gtxn.gid g);
      if Gtxn.status g = Gtxn.Aborted then
        Hashtbl.remove t.journal (Gtxn.gid g)
    end

let append_control t s c =
  t.controls.(s) <-
    (Cc.Event_log.length (Cc.System.log t.shards.(s)), c) :: t.controls.(s)

(* ------------------------------------------------------------------ *)
(* Durability: WAL sync, fuzzy checkpoints, truncation *)

let shard_label s = Fmt.str "shard-%d" s

let rec take n = function
  | x :: tl when n > 0 -> x :: take (n - 1) tl
  | _ -> []

let rec drop_n n = function
  | _ :: tl when n > 0 -> drop_n (n - 1) tl
  | l -> l

let recovery_order t =
  match t.policy with
  | `None_ -> Cc.Recovery.Commit_order
  | `Static | `Hybrid -> Cc.Recovery.Timestamp_order

(* Shard [s]'s full durable record stream, positions absolute from the
   first record the shard ever appended — truncation never renumbers,
   it only drops a prefix at encode time.  Under group commit the
   durable image is the synced prefix: records appended since the last
   sync are still in the volatile buffer and a crash loses them.  The
   marks are taken at sync time, so "first n events + first m controls"
   is exactly a prefix of the merged record stream.  Without group
   commit every append is durable (the classic synchronous-WAL
   model). *)
let shard_records t s =
  let sys = t.shards.(s) in
  let evs = on_shard t s (fun () -> History.to_list (Cc.System.history sys)) in
  let ctrls = List.rev t.controls.(s) in
  let evs, ctrls =
    if t.group_commit then
      (take t.synced_events.(s) evs, take t.synced_ctrls.(s) ctrls)
    else (evs, ctrls)
  in
  let rec merge idx evs ctrls acc =
    match (evs, ctrls) with
    | _, (p, c) :: ctl when p <= idx -> merge idx evs ctl (Cc.Wal.Control c :: acc)
    | e :: etl, _ -> merge (idx + 1) etl ctrls (Cc.Wal.Event e :: acc)
    | [], (_, c) :: ctl -> merge idx [] ctl (Cc.Wal.Control c :: acc)
    | [], [] -> List.rev acc
  in
  merge 0 evs ctrls []

let durable_shard t s =
  let base = t.wal_base.(s) in
  Cc.Wal.encode_records ~label:(shard_label s) ~base
    (drop_n base (shard_records t s))

(* One WAL device sync per involved shard, all in flight at once: each
   sync's latency is paid on its shard's own domain, so the syncs
   overlap in wall-clock time.  [records] is the number of transactions
   whose records the shard's sync covers — the group commit batch size.
   Marks advance to the current end of the shard's record stream:
   everything appended so far becomes durable in one device operation. *)
let sync_shards t involved =
  let promises =
    List.map (fun (s, _) -> Exec.submit t.exec ~shard:s t.sync_cost) involved
  in
  List.iter Exec.await promises;
  List.iter
    (fun (s, records) ->
      t.synced_events.(s) <-
        Cc.Event_log.length (Cc.System.log t.shards.(s));
      t.synced_ctrls.(s) <- List.length t.controls.(s);
      (match t.metrics with
      | None -> ()
      | Some m -> Weihl_obs.Shard_metrics.wal_sync m ~records);
      match t.tracer with
      | None -> ()
      | Some st ->
        St.span (St.shard st s) ~name:"wal.sync" ~cat:"wal" ~ts:(St.now st)
          ~dur:0. ~tid:0
          ~args:[ ("batch", St.num records) ])
    involved

let checkpoint_retain t =
  match t.checkpoint with Some c -> c.retain | None -> default_checkpoint.retain

(* Write one fuzzy checkpoint of shard [s] without stopping traffic:
   capture the durable record stream mid-flight, encode it to a file,
   and append the [Checkpointed] marker that makes the file official
   once synced.  Truncation then drops the WAL prefix behind the
   *oldest retained* checkpoint's redo point — never the newest, so a
   damaged newest file still leaves an older checkpoint with its marker
   and a sufficient tail in the log.  [lose_marker] simulates the crash
   window where the file reached disk but the marker never did: the
   file exists, yet recovery must treat it as if the checkpoint never
   happened (no truncation either).  Returns the checkpoint's redo
   point. *)
let checkpoint_shard ?(lose_marker = false) t s =
  if s < 0 || s >= Array.length t.shards then
    invalid_arg "Group.checkpoint_shard: shard out of range";
  if t.crashed.(s) then invalid_arg "Group.checkpoint_shard: shard is down";
  let t0 = Sys.time () in
  let records = shard_records t s in
  let ts_ordered = recovery_order t = Cc.Recovery.Timestamp_order in
  let ckpt =
    Cc.Checkpoint.capture ~ts_ordered ~label:(shard_label s) records
  in
  let file = Cc.Checkpoint.encode ckpt in
  let covered = Cc.Checkpoint.covered ckpt in
  t.ckpts.(s) <- take (checkpoint_retain t) ((covered, file) :: t.ckpts.(s));
  if not lose_marker then begin
    let digest = Cc.Checkpoint.digest file in
    append_control t s (Cc.Wal.Checkpointed { seq = covered; digest });
    sync_shards t [ (s, 1) ];
    (* Truncate (or archive) the prefix every retained checkpoint
       covers — but only once the retention window is full.  Truncating
       behind a lone checkpoint would make that one file a single point
       of failure: damage it and the log can no longer reach the
       truncation point from record zero. *)
    if List.length t.ckpts.(s) = checkpoint_retain t then begin
    let oldest =
      List.fold_left (fun _ (c, _) -> c) covered t.ckpts.(s)
    in
    if oldest > t.wal_base.(s) then begin
      (match t.checkpoint with
      | Some { archive = true; _ } ->
        let base = t.wal_base.(s) in
        let segment =
          Cc.Wal.encode_records ~label:(shard_label s) ~base
            (take (oldest - base) (drop_n base records))
        in
        t.archived.(s) <- segment :: t.archived.(s)
      | _ -> ());
      t.wal_base.(s) <- oldest
    end
    end
  end;
  let age = List.length records - covered in
  (match t.metrics with
  | None -> ()
  | Some m ->
    Weihl_obs.Shard_metrics.checkpoint_written m
      ~duration:((Sys.time () -. t0) *. 1e6)
      ~age);
  (match t.tracer with
  | None -> ()
  | Some st ->
    St.span (St.shard st s) ~name:"checkpoint" ~cat:"ckpt" ~ts:(St.now st)
      ~dur:0. ~tid:0
      ~args:[ ("covered", St.num covered); ("age", St.num age) ]);
  covered

(* The commit paths call this once per commit landing on shard [s];
   every [every]-th commit triggers an automatic fuzzy checkpoint. *)
let bump_checkpoint t s =
  match t.checkpoint with
  | None -> ()
  | Some { every; _ } ->
    if not t.crashed.(s) then begin
      t.ckpt_countdown.(s) <- t.ckpt_countdown.(s) - 1;
      if t.ckpt_countdown.(s) <= 0 then begin
        t.ckpt_countdown.(s) <- every;
        ignore (checkpoint_shard t s)
      end
    end

let checkpoint_files t s =
  if s < 0 || s >= Array.length t.shards then
    invalid_arg "Group.checkpoint_files: shard out of range";
  List.map snd t.ckpts.(s)

let corrupt_checkpoint t s ~f =
  if s < 0 || s >= Array.length t.shards then
    invalid_arg "Group.corrupt_checkpoint: shard out of range";
  match t.ckpts.(s) with
  | [] -> false
  | (covered, file) :: tl ->
    t.ckpts.(s) <- (covered, f file) :: tl;
    true

let wal_base t s =
  if s < 0 || s >= Array.length t.shards then
    invalid_arg "Group.wal_base: shard out of range";
  t.wal_base.(s)

let archived_segments t s =
  if s < 0 || s >= Array.length t.shards then
    invalid_arg "Group.archived_segments: shard out of range";
  List.rev t.archived.(s)

(* Single-shard fast path: no 2PC round, but hybrid updates still draw
   their commit timestamp from the group clock — local clocks drift
   independently, and hybrid atomicity needs the global timestamp order
   of committed updates consistent with [precedes] across shards. *)
let commit_fast t g s txn =
  let sys = t.shards.(s) in
  (match t.policy with
  | `Hybrid when not (Gtxn.is_read_only g) ->
    Cc.Lamport_clock.observe t.clock (Cc.Lamport_clock.now (Cc.System.clock sys));
    let cts = Cc.Lamport_clock.next t.clock in
    Gtxn.set_commit_ts g cts;
    on_shard t s (fun () ->
        Cc.System.prepare sys txn;
        Cc.System.commit_prepared ~commit_ts:cts sys txn)
  | `None_ | `Static | `Hybrid ->
    on_shard t s (fun () -> Cc.System.commit sys txn));
  metrics_count Weihl_obs.Shard_metrics.local_commit t s;
  Gtxn.set_status g Gtxn.Committed;
  record_commit t g;
  (match t.tracer with
  | None -> ()
  | Some st ->
    St.instant (St.coord st) ~name:"commit.fast" ~cat:"tpc"
      ~ts:(St.now st) ~tid:(Gtxn.gid g) ~args:(ctx_args g);
    trace_end t g ~ts:(St.now st) ~outcome:"commit");
  drop_leg t s txn;
  Hashtbl.remove t.gtxns (Gtxn.gid g);
  bump_checkpoint t s

(* A crashed shard takes its volatile state down: every active global
   transaction with a leg there can no longer complete, so it aborts at
   its surviving shards.  Prepared legs elsewhere are untouched — their
   fate belongs to the decision log. *)
let sweep_crashed t s =
  let victims =
    Hashtbl.fold
      (fun _ g acc ->
        if Gtxn.is_active g && Gtxn.leg g s <> None then g :: acc else acc)
      t.gtxns []
  in
  List.iter (fun g -> abort ~reason:"shard crash" t g) victims

let commit_2pc ?(fault = Tpc.no_fault) ?(votes_no = []) t g legs =
  let gid = Gtxn.gid g in
  let part_shards = List.map fst legs in
  let registry =
    match t.metrics with
    | None -> None
    | Some m -> Some (Weihl_obs.Shard_metrics.registry m)
  in
  (* The 2PC round runs on its own Msim timeline; anchor it at the
     driver's virtual time so its spans land inside the transaction's
     window on the merged trace. *)
  let t0 = match t.tracer with Some st -> St.now st | None -> 0. in
  let round_now = ref 0 in
  let flights = ref [] in
  (* Durability markers: the WAL control record just became the point
     of no return at shard [s], at the round's current virtual time. *)
  let wal_mark s record =
    match t.tracer with
    | None -> ()
    | Some st ->
      St.span (St.shard st s) ~name:"wal.sync" ~cat:"wal"
        ~ts:(t0 +. float_of_int !round_now)
        ~dur:0. ~tid:gid
        ~args:(ctx_args g @ [ ("record", Json.Str record) ])
  in
  let tpc_tracer =
    Option.map
      (fun st ->
        let shard_arr = Array.of_list part_shards in
        let trace_of node =
          if node = 0 then St.coord st
          else St.shard st shard_arr.(node - 1)
        in
        {
          Tpc.on_message =
            (fun ~src ~dst ~sent ~at ~label ->
              round_now := at;
              (* Timers ([src = dst]) are local alarms, not flights. *)
              if src <> dst then begin
                flights := (label, sent, at) :: !flights;
                let args =
                  ctx_args g
                  @ [ ("src", St.num src); ("dst", St.num dst) ]
                in
                let src_tr = trace_of src and dst_tr = trace_of dst in
                ignore
                  (St.flow st ~name:label ~cat:"msg" ~args ~src:src_tr
                     ~src_ts:(t0 +. float_of_int sent)
                     ~src_tid:gid ~dst:dst_tr
                     ~dst_ts:(t0 +. float_of_int at)
                     ~dst_tid:gid);
                St.span dst_tr
                  ~name:(Fmt.str "flight %s" label)
                  ~cat:"flight"
                  ~ts:(t0 +. float_of_int sent)
                  ~dur:(float_of_int (at - sent))
                  ~tid:gid ~args
              end)
        })
      t.tracer
  in
  let participants =
    List.mapi
      (fun i (s, txn) ->
        {
          Tpc.clock =
            (fun () ->
              Timestamp.to_int (Cc.Lamport_clock.now (Cc.System.clock t.shards.(s))));
          prepare =
            (fun () ->
              if List.mem i votes_no then begin
                on_shard t s (fun () ->
                    Cc.System.abort ~reason:"vote no" t.shards.(s) txn);
                metrics_count Weihl_obs.Shard_metrics.abort_at t s;
                drop_leg t s txn;
                Tpc.No
              end
              else begin
                (* Vote durable before it leaves the site: the WAL's
                   Prepared record is the point of no return. *)
                on_shard t s (fun () -> Cc.System.prepare t.shards.(s) txn);
                append_control t s
                  (Cc.Wal.Prepared { gid; activity = Gtxn.activity g });
                wal_mark s "prepared";
                metrics_count Weihl_obs.Shard_metrics.prepare_at t s;
                Tpc.Yes
              end);
          learn =
            (function
            | `Commit ts ->
              let cts = Timestamp.v ts in
              append_control t s
                (Cc.Wal.Decided { gid; verdict = `Commit (Some cts) });
              wal_mark s "decided.commit";
              on_shard t s (fun () ->
                  Cc.System.commit_prepared ~commit_ts:cts t.shards.(s) txn);
              metrics_count Weihl_obs.Shard_metrics.tpc_commit_at t s;
              drop_leg t s txn
            | `Abort ->
              append_control t s (Cc.Wal.Decided { gid; verdict = `Abort });
              wal_mark s "decided.abort";
              on_shard t s (fun () ->
                  Cc.System.abort_prepared t.shards.(s) txn);
              metrics_count Weihl_obs.Shard_metrics.abort_at t s;
              drop_leg t s txn);
        })
      legs
  in
  (* The agreed timestamp must exceed every participant's clock reading
     (max-of-sites) and stay globally unique — route the proposal
     through the group clock. *)
  let choose_ts proposal =
    if proposal > 0 then
      Cc.Lamport_clock.observe t.clock (Timestamp.v (proposal - 1));
    Timestamp.to_int (Cc.Lamport_clock.next t.clock)
  in
  let on_decide d =
    Hashtbl.replace t.decisions gid d;
    match d with
    | `Commit ts ->
      Gtxn.set_commit_ts g (Timestamp.v ts);
      Gtxn.set_status g Gtxn.Committed;
      record_commit t g
    | `Abort -> Gtxn.set_status g Gtxn.Aborted
  in
  t.rounds <- t.rounds + 1;
  let seed = (t.seed * 1_000_003) + t.rounds in
  let decision =
    Tpc.Driver.commit ?metrics:registry ?tracer:tpc_tracer ~fault ~choose_ts
      ~on_decide ~seed participants
  in
  (* Post-round bookkeeping the simulated sites cannot do themselves. *)
  List.iteri
    (fun i (s, txn) ->
      match List.nth decision.Tpc.outcomes i with
      | Tpc.Crashed ->
        (* The site died mid-protocol: its volatile state is gone until
           the shard recovers from its WAL. *)
        t.crashed.(s) <- true
      | Tpc.Aborted ->
        (* Voted no or learned abort (handled in the callbacks) — or
           never engaged (presumed abort), leaving the leg active. *)
        if Cc.Txn.is_active txn then begin
          on_shard t s (fun () ->
              Cc.System.abort ~reason:"presumed abort" t.shards.(s) txn);
          metrics_count Weihl_obs.Shard_metrics.abort_at t s;
          drop_leg t s txn
        end
      | Tpc.Committed _ | Tpc.Blocked -> ())
    legs;
  (* No decision was reached (coordinator died first): the transaction
     is in-doubt iff some leg got as far as prepared. *)
  if not (Hashtbl.mem t.decisions gid) then
    if List.exists (fun (_, txn) -> Cc.Txn.is_prepared txn) legs then
      Gtxn.set_status g Gtxn.In_doubt
    else begin
      Gtxn.set_status g Gtxn.Aborted;
      List.iter
        (fun (s, txn) ->
          if (not t.crashed.(s)) && Cc.Txn.is_active txn then begin
            on_shard t s (fun () ->
                Cc.System.abort ~reason:"presumed abort" t.shards.(s) txn);
            drop_leg t s txn
          end)
        legs
    end;
  if Gtxn.status g = Gtxn.Aborted then Hashtbl.remove t.journal gid;
  (* Only now that [g]'s fate is settled: shards that died mid-round
     take every other active transaction with a leg there down too. *)
  List.iteri
    (fun i (s, _) ->
      if List.nth decision.Tpc.outcomes i = Tpc.Crashed then sweep_crashed t s)
    legs;
  (match t.metrics with
  | None -> ()
  | Some m ->
    Weihl_obs.Shard_metrics.tpc_round m ~committed:decision.Tpc.committed
      ~messages:decision.Tpc.decision_messages
      ~duration:decision.Tpc.decision_duration ~fanout:(List.length legs);
    Array.iteri
      (fun s sys ->
        if not t.crashed.(s) then
          Weihl_obs.Shard_metrics.set_in_doubt m s
            (List.length (Cc.System.prepared_txns sys)))
      t.shards);
  (* Phase spans on the coordinator timeline: prepare+voting runs until
     the first DECIDE leaves; the round's observable extent is the last
     real message delivery — quiescence time always includes the
     drained timeout alarms, which would pad every span by the full
     coordinator patience. *)
  (match t.tracer with
  | None -> ()
  | Some st ->
    let flights = !flights in
    let round_end =
      List.fold_left (fun acc (_, _, at) -> max acc at) 0 flights
    in
    let round_end =
      if round_end = 0 then decision.Tpc.decision_duration else round_end
    in
    let dur = float_of_int round_end in
    let decide_start =
      List.fold_left
        (fun acc (label, sent, _) ->
          if String.length label >= 6 && String.sub label 0 6 = "decide" then
            match acc with
            | None -> Some sent
            | Some m -> Some (min m sent)
          else acc)
        None flights
    in
    let coordt = St.coord st in
    let args = ctx_args g in
    (match decide_start with
    | Some d when d > 0 && float_of_int d <= dur ->
      St.span coordt ~name:"2pc.prepare" ~cat:"tpc.phase" ~ts:t0
        ~dur:(float_of_int d) ~tid:gid ~args;
      St.span coordt ~name:"2pc.decide" ~cat:"tpc.phase"
        ~ts:(t0 +. float_of_int d)
        ~dur:(dur -. float_of_int d)
        ~tid:gid ~args
    | _ ->
      St.span coordt ~name:"2pc.prepare" ~cat:"tpc.phase" ~ts:t0 ~dur
        ~tid:gid ~args);
    St.span coordt ~name:"2pc" ~cat:"tpc" ~ts:t0 ~dur ~tid:gid
      ~args:
        (args
        @ [
            ("fanout", St.num (List.length legs));
            ("committed", Json.Bool decision.Tpc.committed);
            ("messages", St.num decision.Tpc.decision_messages);
          ]);
    let outcome =
      match Gtxn.status g with
      | Gtxn.Committed -> "commit"
      | Gtxn.Aborted -> "tpc abort"
      | Gtxn.In_doubt -> "in-doubt"
      | Gtxn.Active -> "active"
    in
    trace_end t g ~ts:(t0 +. dur) ~outcome);
  maybe_prune t g;
  if decision.Tpc.committed then
    List.iter (fun s -> bump_checkpoint t s) part_shards;
  Distributed (decision, part_shards)

let commit ?fault ?votes_no t g =
  require_active g;
  match Gtxn.legs g with
  | [] ->
    Gtxn.set_status g Gtxn.Committed;
    record_commit t g;
    (match t.tracer with
    | None -> ()
    | Some st -> trace_end t g ~ts:(St.now st) ~outcome:"commit");
    Hashtbl.remove t.gtxns (Gtxn.gid g);
    Fast
  | [ (s, txn) ] ->
    commit_fast t g s txn;
    Fast
  | legs -> commit_2pc ?fault ?votes_no t g legs

(* ------------------------------------------------------------------ *)
(* In-doubt resolution *)

let resolve_gtxn t g verdict =
  let resolved = ref 0 in
  List.iter
    (fun (s, txn) ->
      if (not t.crashed.(s)) && Cc.Txn.is_prepared txn then begin
        incr resolved;
        match verdict with
        | `Commit ts ->
          let cts = Timestamp.v ts in
          append_control t s
            (Cc.Wal.Decided { gid = Gtxn.gid g; verdict = `Commit (Some cts) });
          on_shard t s (fun () ->
              Cc.System.commit_prepared ~commit_ts:cts t.shards.(s) txn);
          metrics_count Weihl_obs.Shard_metrics.tpc_commit_at t s;
          drop_leg t s txn
        | `Abort ->
          append_control t s
            (Cc.Wal.Decided { gid = Gtxn.gid g; verdict = `Abort });
          on_shard t s (fun () ->
              Cc.System.abort_prepared ~reason:"late decision" t.shards.(s) txn);
          metrics_count Weihl_obs.Shard_metrics.abort_at t s;
          drop_leg t s txn
      end)
    (Gtxn.legs g);
  (match Gtxn.status g with
  | Gtxn.In_doubt | Gtxn.Active ->
    (match verdict with
    | `Commit ts ->
      Gtxn.set_commit_ts g (Timestamp.v ts);
      Gtxn.set_status g Gtxn.Committed;
      record_commit t g
    | `Abort ->
      Gtxn.set_status g Gtxn.Aborted;
      Hashtbl.remove t.journal (Gtxn.gid g));
    (match t.tracer with
    | None -> ()
    | Some st ->
      St.instant (St.coord st) ~name:"resolved" ~cat:"resolve"
        ~ts:(St.now st) ~tid:(Gtxn.gid g)
        ~args:
          (ctx_args g
          @ [
              ( "verdict",
                Json.Str
                  (match verdict with
                  | `Commit _ -> "commit"
                  | `Abort -> "abort") );
            ]))
  | Gtxn.Committed | Gtxn.Aborted -> ());
  maybe_prune t g;
  !resolved

(* Resolve every reachable prepared leg from the coordinator's decision
   log; a gtxn with no decision record is presumed aborted.  This is
   the "participant re-contacts the coordinator" step that ends 2PC's
   blocking window once the coordinator is back. *)
let resolve_in_doubt t =
  let pending =
    Hashtbl.fold
      (fun _ g acc ->
        if
          List.exists
            (fun (s, txn) -> (not t.crashed.(s)) && Cc.Txn.is_prepared txn)
            (Gtxn.legs g)
        then g :: acc
        else acc)
      t.gtxns []
  in
  List.fold_left
    (fun n g ->
      let verdict =
        match Hashtbl.find_opt t.decisions (Gtxn.gid g) with
        | Some v -> v
        | None -> `Abort
      in
      n + resolve_gtxn t g verdict)
    0 pending

let in_doubt t =
  let acc = ref [] in
  Array.iteri
    (fun s sys ->
      if not t.crashed.(s) then
        List.iter
          (fun txn ->
            match Hashtbl.find_opt t.local_index.(s) (Cc.Txn.id txn) with
            | Some g -> acc := (Gtxn.gid g, s) :: !acc
            | None -> acc := (-1, s) :: !acc)
          (Cc.System.prepared_txns sys))
    t.shards;
  List.rev !acc

let in_doubt_count t = List.length (in_doubt t)

(* ------------------------------------------------------------------ *)
(* Crash and recovery *)

(* Take shard [s] down: its volatile state is lost, so every active
   global transaction with a leg there aborts at its surviving shards
   (prepared legs elsewhere stay — their fate belongs to the decision
   log).  Returns the WAL text as of the crash. *)
let crash_shard t s =
  if s < 0 || s >= Array.length t.shards then
    invalid_arg "Group.crash_shard: shard out of range";
  let text = durable_shard t s in
  t.crashed.(s) <- true;
  sweep_crashed t s;
  text

let recover_shard ?resolve t s text =
  if not t.crashed.(s) then
    invalid_arg "Group.recover_shard: shard is not crashed";
  let t0 = Sys.time () in
  let sys = Cc.System.create ~policy:t.policy () in
  Hashtbl.iter
    (fun _ (x, home, make) ->
      if home = s then Cc.System.add_object sys (make (Cc.System.log sys) x))
    t.constructors;
  let resolve =
    match resolve with
    | Some f -> f
    | None ->
      fun gid ->
        (match Hashtbl.find_opt t.decisions gid with
        | Some (`Commit ts) -> `Commit (Some (Timestamp.v ts))
        | Some `Abort -> `Abort
        | None -> `Abort (* presumed abort: the coordinator has no record *))
  in
  match
    Cc.Recovery.restore_checkpointed ~resolve
      ~checkpoints:(List.map snd t.ckpts.(s))
      (recovery_order t) sys text
  with
  | Error e -> Error e
  | Ok report ->
    let shard_report = report.Cc.Recovery.shard in
    t.shards.(s) <- sys;
    install_probe t s;
    Hashtbl.reset t.local_index.(s);
    t.controls.(s) <- [];
    (* The group clock must dominate everything the recovered shard
       replayed, or future commit timestamps could collide. *)
    Cc.Lamport_clock.observe t.clock (Cc.Lamport_clock.now (Cc.System.clock sys));
    (* Re-link legs still in doubt, recreating their durable prepared
       marker in the new incarnation's control stream. *)
    List.iter
      (fun (gid, txn) ->
        append_control t s
          (Cc.Wal.Prepared { gid; activity = Cc.Txn.activity txn });
        let g =
          match Hashtbl.find_opt t.gtxns gid with
          | Some g -> g
          | None ->
            let g = Gtxn.make ~gid (Cc.Txn.activity txn) in
            Gtxn.set_status g Gtxn.In_doubt;
            Hashtbl.replace t.gtxns gid g;
            g
        in
        Gtxn.set_leg g s txn;
        if Gtxn.status g = Gtxn.Active then Gtxn.set_status g Gtxn.In_doubt;
        Hashtbl.replace t.local_index.(s) (Cc.Txn.id txn) g)
      shard_report.Cc.Recovery.in_doubt;
    (* Recovery rewrites the WAL (replayed log + re-created Prepared
       markers) durably before the shard returns to service.  The new
       incarnation starts from record zero with no checkpoints: the old
       files' positions refer to the pre-crash stream and must not leak
       into the next crash's recovery. *)
    t.synced_events.(s) <- Cc.Event_log.length (Cc.System.log sys);
    t.synced_ctrls.(s) <- List.length t.controls.(s);
    t.ckpts.(s) <- [];
    t.wal_base.(s) <- 0;
    t.archived.(s) <- [];
    (match t.checkpoint with
    | None -> ()
    | Some { every; _ } ->
      t.ckpt_countdown.(s) <-
        jittered_countdown ~every ~shards:(Array.length t.shards) s);
    t.crashed.(s) <- false;
    (* Transactions that were only waiting on this shard may now be
       fully resolved. *)
    let all = Hashtbl.fold (fun _ g acc -> g :: acc) t.gtxns [] in
    List.iter (fun g -> maybe_prune t g) all;
    (match t.metrics with
    | None -> ()
    | Some m ->
      Weihl_obs.Shard_metrics.set_in_doubt m s
        (List.length (Cc.System.prepared_txns sys));
      Weihl_obs.Shard_metrics.recovery_done m
        ~duration:((Sys.time () -. t0) *. 1e6)
        ~records:report.Cc.Recovery.replayed_records);
    Ok report

(* ------------------------------------------------------------------ *)
(* Cross-shard deadlock detection *)

let find_deadlock t =
  (* Merge the per-shard waits-for graphs through the leg index into a
     graph over global transactions, then look for a cycle. *)
  let edges = Hashtbl.create 16 in
  let nodes = ref [] in
  Array.iteri
    (fun s sys ->
      if not t.crashed.(s) then
        List.iter
          (fun (w, bs) ->
            match Hashtbl.find_opt t.local_index.(s) w with
            | None -> ()
            | Some gw ->
              let targets =
                List.filter_map
                  (fun b -> Hashtbl.find_opt t.local_index.(s) b)
                  bs
              in
              let gid = Gtxn.gid gw in
              if not (Hashtbl.mem edges gid) then nodes := gw :: !nodes;
              let prev = Option.value ~default:[] (Hashtbl.find_opt edges gid) in
              Hashtbl.replace edges gid (targets @ prev))
          (on_shard t s (fun () -> Cc.System.waits_snapshot sys)))
    t.shards;
  (* DFS with an explicit path; a back-edge into the path is a cycle. *)
  let color = Hashtbl.create 16 in
  let rec dfs path g =
    let gid = Gtxn.gid g in
    match Hashtbl.find_opt color gid with
    | Some `Done -> None
    | Some `Gray ->
      (* Cut the path at the first occurrence of [g]. *)
      let rec cut = function
        | [] -> []
        | x :: _ when Gtxn.equal x g -> [ x ]
        | x :: rest -> x :: cut rest
      in
      Some (List.rev (cut path))
    | None ->
      Hashtbl.replace color gid `Gray;
      let succs = Option.value ~default:[] (Hashtbl.find_opt edges gid) in
      let rec try_succs = function
        | [] ->
          Hashtbl.replace color gid `Done;
          None
        | s :: rest -> (
          match dfs (g :: path) s with
          | Some _ as c -> c
          | None -> try_succs rest)
      in
      try_succs succs
  in
  let rec scan = function
    | [] -> None
    | g :: rest -> (
      match dfs [] g with Some _ as c -> c | None -> scan rest)
  in
  scan (List.rev !nodes)

let victim cycle =
  match cycle with
  | [] -> invalid_arg "Group.victim: empty cycle"
  | g :: rest ->
    List.fold_left (fun acc g -> if Gtxn.gid g > Gtxn.gid acc then g else acc)
      g rest

(* ------------------------------------------------------------------ *)
(* The merged committed projection *)

let committed_projection t =
  let seq = List.rev t.commit_seq in
  let ordered =
    match t.policy with
    | `None_ -> seq
    | `Static | `Hybrid ->
      List.stable_sort
        (fun (_, _, a) (_, _, b) ->
          match (a, b) with
          | Some a, Some b -> Timestamp.compare a b
          | None, Some _ -> -1
          | Some _, None -> 1
          | None, None -> 0)
        seq
  in
  List.filter_map
    (fun (gid, activity, _) ->
      match Hashtbl.find_opt t.journal gid with
      | Some ops -> Some (activity, List.rev ops)
      | None -> Some (activity, []))
    ordered

let committed_projection_ts t =
  let seq = List.rev t.commit_seq in
  let ordered =
    match t.policy with
    | `None_ -> seq
    | `Static | `Hybrid ->
      List.stable_sort
        (fun (_, _, a) (_, _, b) ->
          match (a, b) with
          | Some a, Some b -> Timestamp.compare a b
          | None, Some _ -> -1
          | Some _, None -> 1
          | None, None -> 0)
        seq
  in
  List.map
    (fun (gid, activity, ts) ->
      match Hashtbl.find_opt t.journal gid with
      | Some ops -> (activity, ts, List.rev ops)
      | None -> (activity, ts, []))
    ordered

let committed_count t = List.length t.commit_seq

let agreed_commit_ts t gid =
  match Hashtbl.find_opt t.decisions gid with
  | Some (`Commit ts) -> Some ts
  | Some `Abort | None -> None

let tpc_rounds t = t.rounds

(* ------------------------------------------------------------------ *)
(* Batched execution and group commit *)

(* Execute one operation per entry, batched: entries are grouped by
   home shard, one job per shard runs its sub-list in entry order, and
   the coordinator joins on all replies before folding them back into
   group state.  Per-shard execution order is deterministic (entry
   order), so results are identical at any domain count — only
   wall-clock timing varies. *)
let invoke_batch t entries =
  let entries = Array.of_list entries in
  let n = Array.length entries in
  let results = Array.make n (Refused "unprocessed") in
  let shards_n = Array.length t.shards in
  let per_shard = Array.make shards_n [] in
  Array.iteri
    (fun i (g, x, _op) ->
      require_active g;
      let s = shard_of t x in
      if t.crashed.(s) then results.(i) <- Refused "shard down"
      else per_shard.(s) <- i :: per_shard.(s))
    entries;
  let jobs =
    List.filter_map
      (fun s ->
        match List.rev per_shard.(s) with [] -> None | idxs -> Some (s, idxs))
      (List.init shards_n Fun.id)
  in
  (* One job per shard.  Leg lookups happen coordinator-side; the job
     creates missing legs (first contact) and returns them with the raw
     shard results. *)
  let promises =
    List.map
      (fun (s, idxs) ->
        let sys = t.shards.(s) in
        let prep =
          List.map
            (fun i ->
              let g, x, op = entries.(i) in
              (i, Gtxn.gid g, Gtxn.leg g s, Gtxn.init_ts g, Gtxn.activity g, x, op))
            idxs
        in
        ( s,
          Exec.submit t.exec ~shard:s (fun () ->
              let fresh = Hashtbl.create 8 in
              List.map
                (fun (i, gid, leg, init_ts, activity, x, op) ->
                  let txn =
                    match leg with
                    | Some txn -> txn
                    | None -> (
                      match Hashtbl.find_opt fresh gid with
                      | Some txn -> txn
                      | None ->
                        let txn = Cc.System.begin_txn ?ts:init_ts sys activity in
                        Hashtbl.replace fresh gid txn;
                        txn)
                  in
                  (i, txn, Cc.System.invoke sys txn x op))
                prep) ))
      jobs
  in
  (* Sample the mailbox depth gauges while the jobs are in flight. *)
  (match t.metrics with
  | None -> ()
  | Some m ->
    List.iter
      (fun (s, _) ->
        Weihl_obs.Shard_metrics.set_mailbox_depth m s (mailbox_depth t s))
      jobs);
  List.iter
    (fun (s, p) ->
      List.iter
        (fun (i, txn, raw) ->
          let g, x, op = entries.(i) in
          (match Gtxn.leg g s with
          | Some _ -> ()
          | None ->
            Gtxn.set_leg g s txn;
            Hashtbl.replace t.local_index.(s) (Cc.Txn.id txn) g);
          match raw with
          | Cc.Atomic_object.Granted v ->
            journal_append t g (x, op, v);
            results.(i) <- Granted v
          | Cc.Atomic_object.Wait blockers ->
            metrics_count Weihl_obs.Shard_metrics.conflict_at t s;
            results.(i) <-
              Wait
                (List.filter_map
                   (fun b -> Hashtbl.find_opt t.local_index.(s) (Cc.Txn.id b))
                   blockers)
          | Cc.Atomic_object.Refused why -> results.(i) <- Refused why)
        (Exec.await p))
    promises;
  Array.to_list results

(* Commit a batch of transactions with group commit and a batched,
   synchronous 2PC:

   - leg-free transactions commit trivially;
   - single-shard commits execute in one job per shard, then ONE sync
     per shard covers the whole batch's commit records;
   - multi-shard transactions prepare in the same per-shard jobs (vote
     markers appended), the wave-1 sync makes every vote durable before
     the coordinator decides, and a second per-shard job wave applies
     the decisions under Decided records followed by the wave-2 sync.

   Nothing is acknowledged — no status flips to Committed, nothing
   enters the committed projection — until the sync covering its
   records has returned.  [crash_before_sync] injects the classic
   group-commit fault: the listed shards die after appending their
   wave-1 records but before syncing them, so those records are lost
   and the transactions they belonged to are never acknowledged. *)
let commit_batch ?(crash_before_sync = []) t gs =
  List.iter require_active gs;
  let shards_n = Array.length t.shards in
  let crash_set s = List.mem s crash_before_sync in
  let trivial, singles, multis =
    List.fold_left
      (fun (tr, si, mu) g ->
        match Gtxn.legs g with
        | [] -> (g :: tr, si, mu)
        | [ (s, txn) ] -> (tr, (g, s, txn) :: si, mu)
        | legs -> (tr, si, (g, legs) :: mu))
      ([], [], []) gs
  in
  let trivial = List.rev trivial
  and singles = List.rev singles
  and multis = List.rev multis in
  (* Leg-free transactions have nothing to make durable. *)
  List.iter
    (fun g ->
      Gtxn.set_status g Gtxn.Committed;
      record_commit t g;
      Hashtbl.remove t.gtxns (Gtxn.gid g))
    trivial;
  (* Hybrid single-shard updates draw their commit timestamp from the
     group clock coordinator-side — the fast path's discipline — and
     the shard job runs prepare + commit_prepared at that timestamp. *)
  let singles =
    List.map
      (fun ((g, s, _txn) as item) ->
        let mode =
          match t.policy with
          | `Hybrid when not (Gtxn.is_read_only g) ->
            Cc.Lamport_clock.observe t.clock
              (Cc.Lamport_clock.now (Cc.System.clock t.shards.(s)));
            let cts = Cc.Lamport_clock.next t.clock in
            Gtxn.set_commit_ts g cts;
            `Commit_prepared cts
          | `None_ | `Static | `Hybrid -> `Commit
        in
        (item, mode))
      singles
  in
  (* Phase 1, one job per shard: single-shard commits execute and every
     multi-shard leg prepares, appending records to the volatile log
     tail in batch order. *)
  let phase1 = Array.make shards_n [] in
  let batch1 = Array.make shards_n 0 in
  List.iter
    (fun ((_g, s, txn), mode) ->
      let sys = t.shards.(s) in
      let thunk =
        match mode with
        | `Commit -> fun () -> Cc.System.commit sys txn
        | `Commit_prepared cts ->
          fun () ->
            Cc.System.prepare sys txn;
            Cc.System.commit_prepared ~commit_ts:cts sys txn
      in
      phase1.(s) <- thunk :: phase1.(s);
      batch1.(s) <- batch1.(s) + 1)
    singles;
  List.iter
    (fun (_g, legs) ->
      List.iter
        (fun (s, txn) ->
          let sys = t.shards.(s) in
          phase1.(s) <- (fun () -> Cc.System.prepare sys txn) :: phase1.(s);
          batch1.(s) <- batch1.(s) + 1)
        legs)
    multis;
  let run_phase work =
    let jobs =
      List.filter_map
        (fun s ->
          match List.rev work.(s) with
          | [] -> None
          | thunks ->
            Some
              (Exec.submit t.exec ~shard:s (fun () ->
                   List.iter (fun f -> f ()) thunks)))
        (List.init shards_n Fun.id)
    in
    List.iter Exec.await jobs
  in
  run_phase phase1;
  (* Durable vote markers for every prepared leg. *)
  List.iter
    (fun (g, legs) ->
      List.iter
        (fun (s, _txn) ->
          append_control t s
            (Cc.Wal.Prepared { gid = Gtxn.gid g; activity = Gtxn.activity g });
          metrics_count Weihl_obs.Shard_metrics.prepare_at t s)
        legs)
    multis;
  (* Group commit, wave 1: one sync per involved shard covers every
     commit record and vote appended above.  A fault-injected shard
     dies here instead — after append, before sync — losing its
     unsynced tail. *)
  let involved1 =
    List.filter_map
      (fun s ->
        if batch1.(s) > 0 && not (crash_set s) then Some (s, batch1.(s))
        else None)
      (List.init shards_n Fun.id)
  in
  sync_shards t involved1;
  let crashed_now =
    List.filter
      (fun s -> batch1.(s) > 0 && crash_set s)
      (List.init shards_n Fun.id)
  in
  List.iter (fun s -> t.crashed.(s) <- true) crashed_now;
  (* Acknowledge single-shard commits — only now that the covering sync
     returned.  A commit whose shard died before the sync was never
     durable: it is not acknowledged, full stop. *)
  List.iter
    (fun ((g, s, txn), _mode) ->
      if t.crashed.(s) then begin
        Gtxn.set_status g Gtxn.Aborted;
        Hashtbl.remove t.journal (Gtxn.gid g)
      end
      else begin
        metrics_count Weihl_obs.Shard_metrics.local_commit t s;
        Gtxn.set_status g Gtxn.Committed;
        record_commit t g
      end;
      drop_leg t s txn;
      Hashtbl.remove t.gtxns (Gtxn.gid g))
    singles;
  (* Decide the multis: a leg whose shard died before its vote was
     durable means abort (the coordinator never got a durable yes);
     otherwise commit at a timestamp past every participant's clock,
     drawn through the group clock. *)
  let decided =
    List.map
      (fun (g, legs) ->
        let gid = Gtxn.gid g in
        let doomed = List.exists (fun (s, _) -> t.crashed.(s)) legs in
        let verdict =
          if doomed then `Abort
          else begin
            List.iter
              (fun (s, _) ->
                Cc.Lamport_clock.observe t.clock
                  (Cc.Lamport_clock.now (Cc.System.clock t.shards.(s))))
              legs;
            `Commit (Timestamp.to_int (Cc.Lamport_clock.next t.clock))
          end
        in
        Hashtbl.replace t.decisions gid verdict;
        (match verdict with
        | `Commit ts ->
          Gtxn.set_commit_ts g (Timestamp.v ts);
          Gtxn.set_status g Gtxn.Committed;
          record_commit t g
        | `Abort ->
          Gtxn.set_status g Gtxn.Aborted;
          Hashtbl.remove t.journal gid);
        (g, legs, verdict))
      multis
  in
  (* Phase 2, one job per shard: apply the decisions under durable
     Decided records, then the wave-2 sync. *)
  let phase2 = Array.make shards_n [] in
  let batch2 = Array.make shards_n 0 in
  List.iter
    (fun (g, legs, verdict) ->
      let gid = Gtxn.gid g in
      List.iter
        (fun (s, txn) ->
          if not t.crashed.(s) then begin
            let sys = t.shards.(s) in
            (match verdict with
            | `Commit ts ->
              let cts = Timestamp.v ts in
              append_control t s
                (Cc.Wal.Decided { gid; verdict = `Commit (Some cts) });
              phase2.(s) <-
                (fun () -> Cc.System.commit_prepared ~commit_ts:cts sys txn)
                :: phase2.(s);
              metrics_count Weihl_obs.Shard_metrics.tpc_commit_at t s
            | `Abort ->
              append_control t s (Cc.Wal.Decided { gid; verdict = `Abort });
              phase2.(s) <-
                (fun () ->
                  Cc.System.abort_prepared ~reason:"batch abort" sys txn)
                :: phase2.(s);
              metrics_count Weihl_obs.Shard_metrics.abort_at t s);
            batch2.(s) <- batch2.(s) + 1
          end)
        legs)
    decided;
  run_phase phase2;
  let involved2 =
    List.filter_map
      (fun s -> if batch2.(s) > 0 then Some (s, batch2.(s)) else None)
      (List.init shards_n Fun.id)
  in
  sync_shards t involved2;
  List.iter
    (fun (g, legs, _verdict) ->
      List.iter
        (fun (s, txn) -> if not t.crashed.(s) then drop_leg t s txn)
        legs;
      (match t.metrics with
      | None -> ()
      | Some m ->
        Weihl_obs.Metrics.Histogram.observe
          (Weihl_obs.Shard_metrics.fanout m)
          (float_of_int (List.length legs)));
      maybe_prune t g)
    decided;
  (* A shard that died in this batch takes every other active
     transaction with a leg there down with it. *)
  List.iter (fun s -> sweep_crashed t s) crashed_now;
  (* Commit-count checkpoint scheduling, once the batch has settled. *)
  List.iter
    (fun ((g, s, _txn), _mode) ->
      if Gtxn.status g = Gtxn.Committed then bump_checkpoint t s)
    singles;
  List.iter
    (fun (_g, legs, verdict) ->
      match verdict with
      | `Commit _ -> List.iter (fun (s, _) -> bump_checkpoint t s) legs
      | `Abort -> ())
    decided;
  match t.metrics with
  | None -> ()
  | Some m ->
    Array.iteri
      (fun s sys ->
        if not t.crashed.(s) then
          Weihl_obs.Shard_metrics.set_in_doubt m s
            (List.length (Cc.System.prepared_txns sys)))
      t.shards
