type 'a t = {
  m : Mutex.t;
  nonempty : Condition.t;
  nonfull : Condition.t;
  q : 'a Queue.t;
  capacity : int;
  mutable closed : bool;
  mutable max_depth : int;
}

exception Closed

let create ?(capacity = 1024) () =
  if capacity <= 0 then invalid_arg "Mailbox.create: capacity must be positive";
  {
    m = Mutex.create ();
    nonempty = Condition.create ();
    nonfull = Condition.create ();
    q = Queue.create ();
    capacity;
    closed = false;
    max_depth = 0;
  }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let push t x =
  locked t (fun () ->
      while (not t.closed) && Queue.length t.q >= t.capacity do
        Condition.wait t.nonfull t.m
      done;
      if t.closed then raise Closed;
      Queue.push x t.q;
      let d = Queue.length t.q in
      if d > t.max_depth then t.max_depth <- d;
      Condition.signal t.nonempty)

let pop t =
  locked t (fun () ->
      while Queue.is_empty t.q && not t.closed do
        Condition.wait t.nonempty t.m
      done;
      if Queue.is_empty t.q then None
      else begin
        let x = Queue.pop t.q in
        Condition.signal t.nonfull;
        Some x
      end)

let close t =
  locked t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty;
      Condition.broadcast t.nonfull)

let depth t = locked t (fun () -> Queue.length t.q)
let max_depth t = locked t (fun () -> t.max_depth)
