(* The shard execution layer: where shard work actually runs.

   [Inline] is the pre-multicore semantics — a submitted job runs
   immediately on the caller's domain, in submission order.  It is the
   default ([domains = 1]) and is byte-for-byte today's sequential
   behavior, which is what keeps virtual-time benches, fault schedules
   and trace tests seed-stable.

   [Pool] gives each shard a home worker domain (shard s is owned by
   worker [s mod domains]) fed by a bounded mailbox.  The coordinator
   posts jobs and joins on replies; a shard's jobs execute in
   submission order on its owner domain, so each non-thread-safe
   [Cc.System.t] is only ever touched by one domain at a time (domain
   confinement), and per-shard execution order — hence results — stays
   deterministic at any domain count.  Only wall-clock timing varies. *)

type job = unit -> unit

type worker = {
  mailbox : job Mailbox.t;
  mutable domain : unit Domain.t option;
}

type t =
  | Inline
  | Pool of { workers : worker array; owner : int array (* shard -> worker *) }

type 'a cell = {
  m : Mutex.t;
  c : Condition.t;
  mutable state : ('a, exn) result option;
}

type 'a promise = Now of ('a, exn) result | Later of 'a cell

let worker_loop w () =
  let rec loop () =
    match Mailbox.pop w.mailbox with
    | None -> ()
    | Some job ->
      job ();
      loop ()
  in
  loop ()

let create ?(domains = 1) ~shards () =
  if shards <= 0 then invalid_arg "Exec.create: shards must be positive";
  if domains <= 1 then Inline
  else begin
    let n = min domains shards in
    let workers =
      Array.init n (fun _ -> { mailbox = Mailbox.create (); domain = None })
    in
    Array.iter
      (fun w -> w.domain <- Some (Domain.spawn (worker_loop w)))
      workers;
    Pool { workers; owner = Array.init shards (fun s -> s mod n) }
  end

let domain_count = function
  | Inline -> 1
  | Pool { workers; _ } -> Array.length workers

let submit t ~shard f =
  match t with
  | Inline -> Now (try Ok (f ()) with e -> Error e)
  | Pool { workers; owner } ->
    if shard < 0 || shard >= Array.length owner then
      invalid_arg "Exec.submit: shard out of range";
    let cell = { m = Mutex.create (); c = Condition.create (); state = None } in
    let job () =
      let r = try Ok (f ()) with e -> Error e in
      Mutex.lock cell.m;
      cell.state <- Some r;
      Condition.broadcast cell.c;
      Mutex.unlock cell.m
    in
    Mailbox.push workers.(owner.(shard)).mailbox job;
    Later cell

let await = function
  | Now (Ok v) -> v
  | Now (Error e) -> raise e
  | Later cell -> (
    Mutex.lock cell.m;
    while cell.state = None do
      Condition.wait cell.c cell.m
    done;
    let r = Option.get cell.state in
    Mutex.unlock cell.m;
    match r with Ok v -> v | Error e -> raise e)

let call t ~shard f = await (submit t ~shard f)

let mailbox_depth t ~shard =
  match t with
  | Inline -> 0
  | Pool { workers; owner } -> Mailbox.depth workers.(owner.(shard)).mailbox

let mailbox_max_depth t ~shard =
  match t with
  | Inline -> 0
  | Pool { workers; owner } ->
    Mailbox.max_depth workers.(owner.(shard)).mailbox

let shutdown t =
  match t with
  | Inline -> ()
  | Pool { workers; _ } ->
    Array.iter (fun w -> Mailbox.close w.mailbox) workers;
    Array.iter
      (fun w ->
        match w.domain with
        | None -> ()
        | Some d ->
          w.domain <- None;
          Domain.join d)
      workers
