(** Deterministic object-to-shard placement.

    The router is a pure function of the object's name, so every
    component — facade, recovery, analysis probes — agrees on an
    object's home shard without coordination, across runs and across
    processes. *)

open Weihl_event

val hash : string -> int
(** FNV-1a (32-bit) of a string, in [0, 0xFFFFFFFF]. *)

val shard_of : shards:int -> Object_id.t -> int
(** The home shard of an object, in [0, shards).
    @raise Invalid_argument if [shards <= 0]. *)
