(** The catalogue of built-in ADT specifications, by name, and the
    operation-name heuristic that guesses an object's type from a
    history. *)

val all : (string * Weihl_spec.Seq_spec.t) list
(** Every built-in specification, keyed by its CLI name
    ([intset], [counter], [account], [queue], [register], [kv],
    [semiqueue], [stack], [pqueue], [blind_counter], [log]). *)

val all_modules : (string * (module Adt_sig.S)) list
(** The same catalogue as full {!Adt_sig.S} modules, exposing each
    ADT's hand-written [commutes] table and [classify] function to
    static analysis.  Same names, same order as {!all}. *)

val find : string -> Weihl_spec.Seq_spec.t option
val find_module : string -> (module Adt_sig.S) option

val infer_spec :
  Weihl_event.Operation.t list -> Weihl_spec.Seq_spec.t option
(** The specification whose operation vocabulary matches the given
    operations, or [None] when nothing matches.  Ambiguous names
    resolve deterministically: the tests run in a fixed order
    (account, fifo queue, stack, kv map, priority queue, counter,
    blind counter, log, semiqueue, register, intset), so e.g. [add]
    always yields the priority queue even though a set could plausibly
    claim it. *)
