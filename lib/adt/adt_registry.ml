open Weihl_event
module Seq_spec = Weihl_spec.Seq_spec

let all : (string * Seq_spec.t) list =
  [
    ("intset", Intset.spec);
    ("counter", Counter.spec);
    ("account", Bank_account.spec);
    ("queue", Fifo_queue.spec);
    ("register", Register.spec);
    ("kv", Kv_map.spec);
    ("semiqueue", Semiqueue.spec);
    ("stack", Stack.spec);
    ("pqueue", Priority_queue.spec);
    ("blind_counter", Blind_counter.spec);
    ("log", Append_log.spec);
  ]

let all_modules : (string * (module Adt_sig.S)) list =
  [
    ("intset", (module Intset));
    ("counter", (module Counter));
    ("account", (module Bank_account));
    ("queue", (module Fifo_queue));
    ("register", (module Register));
    ("kv", (module Kv_map));
    ("semiqueue", (module Semiqueue));
    ("stack", (module Stack));
    ("pqueue", (module Priority_queue));
    ("blind_counter", (module Blind_counter));
    ("log", (module Append_log));
  ]

let find name = List.assoc_opt name all

let find_module name = List.assoc_opt name all_modules

(* Guess an object's type from the operation names appearing on it.
   The order of the tests resolves ambiguous names deterministically:
   "add" belongs to the priority queue (tested before anything a set
   might claim), "get"/"put" to the map, and so on.  Keep the order
   stable — histories in the wild rely on it. *)
let infer_spec ops =
  let has name = List.exists (fun op -> Operation.name op = name) ops in
  if has "deposit" || has "withdraw" || has "balance" then
    Some Bank_account.spec
  else if has "enqueue" || has "dequeue" then Some Fifo_queue.spec
  else if has "push" || has "pop" then Some Stack.spec
  else if has "put" || has "get" || has "remove" then Some Kv_map.spec
  else if has "add" || has "extract_min" || has "find_min" then
    Some Priority_queue.spec
  else if has "increment" then Some Counter.spec
  else if has "bump" then Some Blind_counter.spec
  else if has "append" then Some Append_log.spec
  else if has "enq" || has "deq" then Some Semiqueue.spec
  else if has "write" then Some Register.spec
  else if has "insert" || has "delete" || has "member" || has "size" then
    Some Intset.spec
  else None
