type vote = Yes | No

type crash_point =
  | No_crash
  | Before_prepare
  | After_prepare
  | Mid_decision of int

type config = {
  participants : int;
  site_clocks : int list;
  votes : vote list;
  coordinator_crash : crash_point;
  participant_crash : (int * [ `Before_vote | `After_vote ]) option;
  timeout : int;
  max_retries : int;
  retry_cap : int;
  msg_faults : Msim.faults;
  seed : int;
}

let default_config =
  {
    participants = 3;
    site_clocks = [ 0; 0; 0 ];
    votes = [ Yes; Yes; Yes ];
    coordinator_crash = No_crash;
    participant_crash = None;
    timeout = 50;
    max_retries = 4;
    retry_cap = 400;
    msg_faults = Msim.no_faults;
    seed = 1;
  }

(* Exponential backoff: the delay before termination round [r], doubling
   from [timeout] and capped at [retry_cap]. *)
let backoff ~timeout ~retry_cap r =
  let rec double d r = if r <= 0 || d >= retry_cap then d else double (d * 2) (r - 1) in
  min (double timeout r) retry_cap

type site_status = Committed of int | Aborted | Blocked | Crashed

type outcome = {
  statuses : site_status list;
  commit_ts : int option;
  final_clocks : int list;
  messages : int;
  duration : int;
}

type decision = {
  committed : bool;
  decision_ts : int option;
  outcomes : site_status list;
  decision_messages : int;
  decision_duration : int;
}

type participant = {
  clock : unit -> int;
  prepare : unit -> vote;
  learn : [ `Commit of int | `Abort ] -> unit;
}

type fault = {
  f_coordinator_crash : crash_point;
  f_participant_crash : (int * [ `Before_vote | `After_vote ]) option;
  f_msg_faults : Msim.faults;
  f_partitions : (int * int) list;
  f_heal_at : int option;
}

let no_fault =
  {
    f_coordinator_crash = No_crash;
    f_participant_crash = None;
    f_msg_faults = Msim.no_faults;
    f_partitions = [];
    f_heal_at = None;
  }

type tracer = {
  on_message :
    src:int -> dst:int -> sent:int -> at:int -> label:string -> unit;
}

type msg =
  | Prepare
  | Vote_yes of int * int (* participant index, clock reading *)
  | Vote_no of int
  | Decide_commit of int (* commit timestamp *)
  | Decide_abort
  | Timeout_check
  | Coord_timeout
  | Query of int (* querying participant index *)
  | Peer_status of site_status_wire

and site_status_wire = W_committed of int | W_aborted | W_prepared | W_idle

let msg_label = function
  | Prepare -> "prepare"
  | Vote_yes _ -> "vote.yes"
  | Vote_no _ -> "vote.no"
  | Decide_commit _ -> "decide.commit"
  | Decide_abort -> "decide.abort"
  | Timeout_check -> "timer.timeout_check"
  | Coord_timeout -> "timer.coord_timeout"
  | Query _ -> "query"
  | Peer_status _ -> "peer.status"

(* Participant protocol state. *)
type pstate =
  | P_idle
  | P_refused (* decided abort before voting (termination protocol) *)
  | P_prepared
  | P_committed of int
  | P_aborted

type coordinator = {
  mutable yes_votes : (int * int) list; (* participant, clock *)
  mutable no_seen : bool;
  mutable decided : bool;
}

(* The protocol engine shared by the one-shot {!run} and the reusable
   {!Driver}.  Node 0 is the coordinator; participant i is node i+1. *)
let run_core ?metrics ?tracer ~timeout ~max_retries ~retry_cap ~(fault : fault)
    ~choose_ts ~on_decide ~seed (parts : participant array) : decision =
  let n = Array.length parts in
  let node_of_participant i = i + 1 in
  let participant_of_node node = node - 1 in
  let coord = { yes_votes = []; no_seen = false; decided = false } in
  let commit_ts = ref None in
  let pstates = Array.make (max n 1) P_idle in
  let count name =
    match metrics with
    | None -> ()
    | Some reg ->
      Weihl_obs.Metrics.Counter.incr
        (Weihl_obs.Metrics.Registry.counter reg name)
  in
  let site_count i what = count (Fmt.str "tpc.site%d.%s" i what) in
  (* Every phase transition of a participant goes through here so the
     registry sees it.  [learn] fires exactly on the transition out of
     [P_prepared] — the only state from which a yes-voter resolves. *)
  let set_pstate i st =
    (match st with
    | P_prepared -> site_count i "prepared"
    | P_committed _ -> site_count i "committed"
    | P_aborted -> site_count i "aborted"
    | P_refused -> site_count i "refused"
    | P_idle -> ());
    (match (pstates.(i), st) with
    | P_prepared, P_committed ts -> parts.(i).learn (`Commit ts)
    | P_prepared, P_aborted -> parts.(i).learn `Abort
    | _ -> ());
    pstates.(i) <- st
  in
  let rounds = Array.make (max n 1) 0 in
  let decide sim ts_or_abort upto =
    coord.decided <- true;
    count
      (match ts_or_abort with
      | Some _ -> "tpc.coord.decide.commit"
      | None -> "tpc.coord.decide.abort");
    (match ts_or_abort with
    | Some ts -> commit_ts := Some ts
    | None -> ());
    (* The coordinator's decision is durable (write-ahead) before any
       Decide message leaves — this is the hook a decision log hangs
       off. *)
    on_decide
      (match ts_or_abort with Some ts -> `Commit ts | None -> `Abort);
    let msg =
      match ts_or_abort with
      | Some ts -> Decide_commit ts
      | None -> Decide_abort
    in
    for i = 0 to min (upto - 1) (n - 1) do
      Msim.send sim ~src:0 ~dst:(node_of_participant i) msg
    done
  in
  let handler sim ~node msg =
    if node = 0 then begin
      (* Coordinator. *)
      match msg with
      | Vote_no _ ->
        if not coord.decided then decide sim None n
      | Vote_yes (i, clock) ->
        if not coord.decided then begin
          if not (List.mem_assoc i coord.yes_votes) then
            coord.yes_votes <- (i, clock) :: coord.yes_votes;
          if List.length coord.yes_votes = n then begin
            (* The hybrid commit-timestamp agreement rule: strictly
               above every participant's clock reading, so the agreed
               timestamp is in every site's future. *)
            let ts =
              choose_ts
                (1 + List.fold_left (fun acc (_, c) -> max acc c) 0 coord.yes_votes)
            in
            match fault.f_coordinator_crash with
            | Mid_decision k ->
              decide sim (Some ts) k;
              Msim.crash sim 0
            | _ -> decide sim (Some ts) n
          end
        end
      | Coord_timeout ->
        (* Presumed abort: a vote is missing past the coordinator's
           patience — lost, or its site is down.  Abort is always safe
           before a decision; without this, one silent participant
           would block every peer forever. *)
        if not coord.decided then begin
          count "tpc.coord.timeout";
          decide sim None n
        end
      | Prepare | Decide_commit _ | Decide_abort | Timeout_check | Query _
      | Peer_status _ -> ()
    end
    else begin
      (* Participant. *)
      let i = participant_of_node node in
      (match fault.f_participant_crash with
      | Some (j, `Before_vote) when j = i && pstates.(i) = P_idle ->
        Msim.crash sim node
      | _ -> ());
      if not (Msim.crashed sim node) then
        match msg with
        | Prepare -> (
          site_count i "prepare";
          match pstates.(i) with
          | P_idle -> (
            match parts.(i).prepare () with
            | No ->
              set_pstate i P_aborted;
              site_count i "vote.no";
              Msim.send sim ~src:node ~dst:0 (Vote_no i)
            | Yes ->
              set_pstate i P_prepared;
              site_count i "vote.yes";
              Msim.send sim ~src:node ~dst:0 (Vote_yes (i, parts.(i).clock ()));
              Msim.set_timer sim ~node ~after:timeout Timeout_check;
              (match fault.f_participant_crash with
              | Some (j, `After_vote) when j = i -> Msim.crash sim node
              | _ -> ()))
          | P_refused -> Msim.send sim ~src:node ~dst:0 (Vote_no i)
          | P_prepared | P_committed _ | P_aborted -> ())
        | Decide_commit ts -> (
          match pstates.(i) with
          | P_prepared | P_idle -> set_pstate i (P_committed ts)
          | P_refused | P_committed _ | P_aborted -> ())
        | Decide_abort -> (
          match pstates.(i) with
          | P_prepared | P_idle | P_refused -> set_pstate i P_aborted
          | P_committed _ | P_aborted -> ())
        | Timeout_check ->
          if pstates.(i) = P_prepared then begin
            if rounds.(i) < max_retries then begin
              rounds.(i) <- rounds.(i) + 1;
              site_count i "termination.round";
              (* Cooperative termination: ask every peer.  Queries (or
                 their replies) can be lost, so each round waits twice
                 as long as the last before asking again, up to
                 [retry_cap]. *)
              for j = 0 to n - 1 do
                if j <> i then
                  Msim.send sim ~src:node ~dst:(node_of_participant j)
                    (Query i)
              done;
              Msim.set_timer sim ~node ~after:(backoff ~timeout ~retry_cap rounds.(i))
                Timeout_check
            end
          end
        | Query from -> (
          let reply w =
            Msim.send sim ~src:node ~dst:(node_of_participant from)
              (Peer_status w)
          in
          match pstates.(i) with
          | P_committed ts -> reply (W_committed ts)
          | P_aborted | P_refused -> reply W_aborted
          | P_prepared -> reply W_prepared
          | P_idle ->
            (* Refuse to vote so the querier may safely abort: the
               coordinator can no longer have collected our yes-vote. *)
            set_pstate i P_refused;
            reply W_idle)
        | Peer_status w -> (
          if pstates.(i) = P_prepared then
            match w with
            | W_committed ts -> set_pstate i (P_committed ts)
            | W_aborted | W_idle -> set_pstate i P_aborted
            | W_prepared -> ())
        | Vote_yes _ | Vote_no _ | Coord_timeout -> ()
    end
  in
  let on_deliver =
    Option.map
      (fun tr sim ~src ~dst ~sent msg ->
        tr.on_message ~src ~dst ~sent ~at:(Msim.now sim)
          ~label:(msg_label msg))
      tracer
  in
  let sim =
    Msim.create ?metrics ?on_deliver ~faults:fault.f_msg_faults ~seed
      ~nodes:(n + 1) ~handler ()
  in
  List.iter (fun (a, b) -> Msim.partition sim a b) fault.f_partitions;
  (match fault.f_heal_at with
  | Some time -> Msim.heal_all_at sim ~time
  | None -> ());
  (match fault.f_coordinator_crash with
  | Before_prepare -> Msim.crash sim 0
  | No_crash | After_prepare | Mid_decision _ ->
    for i = 0 to n - 1 do
      Msim.send sim ~src:0 ~dst:(node_of_participant i) Prepare
    done;
    (* The coordinator's own patience: if any vote is still missing
       after the participants' full termination window, presume abort
       rather than leave prepared sites blocked on a silent peer. *)
    Msim.set_timer sim ~node:0 ~after:(2 * timeout) Coord_timeout);
  (match fault.f_coordinator_crash with
  | After_prepare ->
    (* Die just after the prepares leave, before any vote arrives. *)
    Msim.crash_at sim ~time:1 0
  | No_crash | Before_prepare | Mid_decision _ -> ());
  Msim.run sim;
  let outcomes =
    List.init n (fun i ->
        if Msim.crashed sim (node_of_participant i) then Crashed
        else
          match pstates.(i) with
          | P_committed ts -> Committed ts
          | P_aborted | P_refused -> Aborted
          | P_prepared -> Blocked
          | P_idle -> Aborted (* never engaged: presumed abort *))
  in
  {
    committed = !commit_ts <> None;
    decision_ts = !commit_ts;
    outcomes;
    decision_messages = Msim.messages_delivered sim;
    decision_duration = Msim.now sim;
  }

module Driver = struct
  let commit ?(timeout = 50) ?(max_retries = 4) ?(retry_cap = 400) ?metrics
      ?tracer ?(fault = no_fault) ?(choose_ts = fun ts -> ts)
      ?(on_decide = fun _ -> ()) ~seed participants =
    run_core ?metrics ?tracer ~timeout ~max_retries ~retry_cap ~fault
      ~choose_ts ~on_decide ~seed
      (Array.of_list participants)
end

let run ?metrics cfg =
  if List.length cfg.site_clocks <> cfg.participants then
    invalid_arg "Tpc.run: site_clocks length mismatch";
  if List.length cfg.votes <> cfg.participants then
    invalid_arg "Tpc.run: votes length mismatch";
  let clocks = Array.of_list cfg.site_clocks in
  let votes = Array.of_list cfg.votes in
  let parts =
    Array.init cfg.participants (fun i ->
        {
          clock = (fun () -> clocks.(i));
          prepare = (fun () -> votes.(i));
          learn =
            (function
            | `Commit ts -> clocks.(i) <- max clocks.(i) ts
            | `Abort -> ());
        })
  in
  let fault =
    {
      f_coordinator_crash = cfg.coordinator_crash;
      f_participant_crash = cfg.participant_crash;
      f_msg_faults = cfg.msg_faults;
      f_partitions = [];
      f_heal_at = None;
    }
  in
  let d =
    run_core ?metrics ~timeout:cfg.timeout ~max_retries:cfg.max_retries
      ~retry_cap:cfg.retry_cap ~fault ~choose_ts:(fun ts -> ts)
      ~on_decide:(fun _ -> ())
      ~seed:cfg.seed parts
  in
  {
    statuses = d.outcomes;
    commit_ts = d.decision_ts;
    final_clocks = Array.to_list clocks;
    messages = d.decision_messages;
    duration = d.decision_duration;
  }

let atomic_commitment o =
  let committed =
    List.exists (function Committed _ -> true | _ -> false) o.statuses
  in
  let aborted = List.exists (( = ) Aborted) o.statuses in
  not (committed && aborted)

let atomic_decision d =
  let committed =
    List.exists (function Committed _ -> true | _ -> false) d.outcomes
  in
  let aborted = List.exists (( = ) Aborted) d.outcomes in
  not (committed && aborted)

let pp_status ppf = function
  | Committed ts -> Fmt.pf ppf "committed(%d)" ts
  | Aborted -> Fmt.string ppf "aborted"
  | Blocked -> Fmt.string ppf "blocked"
  | Crashed -> Fmt.string ppf "crashed"

let pp_outcome ppf o =
  Fmt.pf ppf "@[<v>decision: %a@,sites: %a@,messages: %d, duration: %d@]"
    Fmt.(option ~none:(any "none") int)
    o.commit_ts
    Fmt.(list ~sep:comma pp_status)
    o.statuses o.messages o.duration

let pp_decision ppf d =
  Fmt.pf ppf "@[<v>decision: %a@,sites: %a@,messages: %d, duration: %d@]"
    Fmt.(option ~none:(any "abort") int)
    d.decision_ts
    Fmt.(list ~sep:comma pp_status)
    d.outcomes d.decision_messages d.decision_duration
