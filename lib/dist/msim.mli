(** A deterministic message-passing simulation: nodes exchange messages
    over a network with seeded random delays; crashed nodes stop
    sending and receiving.  The substrate under {!Tpc}.

    Beyond crashes, the network itself can misbehave: a {!faults}
    record gives per-message probabilities of loss, duplication and
    reordering, all drawn from the same seeded generator so a given
    seed always produces the same failure schedule.  Timers
    ({!set_timer}) are local alarms and never fault. *)

type 'msg t

type faults = {
  drop : float;  (** probability a sent message is lost in transit *)
  duplicate : float;  (** probability a sent message arrives twice *)
  reorder : float;
      (** probability a sent message is delayed past the normal delay
          window, arriving behind later traffic *)
}

val no_faults : faults
(** All probabilities zero — the reliable network of the seed. *)

val create :
  ?min_delay:int -> ?max_delay:int -> ?faults:faults ->
  ?metrics:Weihl_obs.Metrics.Registry.t ->
  ?on_deliver:('msg t -> src:int -> dst:int -> sent:int -> 'msg -> unit) ->
  seed:int -> nodes:int ->
  handler:('msg t -> node:int -> 'msg -> unit) ->
  unit ->
  'msg t
(** [handler] is invoked on each delivery at a live node.  Delays are
    uniform in [min_delay, max_delay] (defaults 1 and 5); [faults]
    defaults to {!no_faults}.  With a [metrics] registry installed,
    drops, duplicates and reorders tick [msim.*] counters.
    [on_deliver] observes every successful delivery — including timer
    firings, for which [src = dst] — just before the handler runs:
    [sent] is the send time, {!now} the delivery time, so the pair
    bounds the message's flight.  Dropped messages are not observed.
    @raise Invalid_argument if a fault probability is outside [0, 1]. *)

val send : 'msg t -> src:int -> dst:int -> 'msg -> unit
(** Enqueue a message.  It is dropped — and counted in
    {!messages_dropped} — if the source is already crashed (a dead node
    sends nothing), if the destination is crashed at delivery time, or
    if the network loses it per [faults.drop]. *)

val set_timer : 'msg t -> node:int -> after:int -> 'msg -> unit
(** Deliver a message from a node to itself after a fixed delay —
    timeouts.  Never subject to message faults. *)

val crash : 'msg t -> int -> unit
val crashed : 'msg t -> int -> bool
val crash_at : 'msg t -> time:int -> int -> unit
(** Schedule a crash at an absolute virtual time. *)

val partition : 'msg t -> int -> int -> unit
(** Cut the (bidirectional) link between two nodes: messages sent
    either way are dropped — and counted under
    [msim.dropped.partition] — until the link heals.  Timers are local
    and unaffected, so timeout-based recovery still runs. *)

val heal : 'msg t -> int -> int -> unit
val heal_all : 'msg t -> unit

val heal_all_at : 'msg t -> time:int -> unit
(** Schedule {!heal_all} at an absolute virtual time. *)

val partitioned : 'msg t -> int -> int -> bool

val now : 'msg t -> int
(** Current virtual time. *)

val messages_delivered : 'msg t -> int

val messages_dropped : 'msg t -> int
(** Messages lost for any reason: crashed source, crashed destination,
    or injected network loss.  The [msim.dropped.crashed_src],
    [msim.dropped.crashed_dst] and [msim.dropped.fault] counters split
    the total by cause. *)

val messages_duplicated : 'msg t -> int
val messages_reordered : 'msg t -> int

val run : ?until:int -> 'msg t -> unit
(** Process deliveries in time order until the queue drains or virtual
    time exceeds [until] (default 100_000). *)
