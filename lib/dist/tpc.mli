(** Two-phase commit with commit-timestamp generation — the
    distributed implementation route for hybrid atomicity the paper
    points to ("some simple modifications to a two-phase commit
    protocol", Section 4.3.3).

    One coordinator and [n] participant sites run atomic commitment for
    a single distributed update transaction over a deterministic
    message-passing simulation ({!Msim}).  Each yes-vote carries the
    participant's logical-clock reading; the coordinator chooses the
    commit timestamp as one past the maximum of all readings, so the
    timestamp exceeds every timestamp any participant has observed —
    making the global timestamp order of committed updates consistent
    with [precedes] at every object, which is exactly what hybrid
    atomicity requires.

    Failure handling is classical 2PC with a cooperative termination
    protocol: a prepared participant that times out queries its peers;
    it adopts any decision a peer knows, aborts if some peer has not
    voted (that peer then refuses to vote), and remains {e blocked}
    when every peer is also prepared — 2PC's well-known blocking
    window, reproduced faithfully.  Termination rounds retry with
    bounded exponential backoff ([timeout], doubling, capped at
    [retry_cap], at most [max_retries] rounds), so queries lost to an
    unreliable network ([msg_faults]) are re-asked rather than fatal.
    The coordinator itself presumes abort if any vote is still missing
    after [2 * timeout]: a silent participant aborts the transaction
    instead of blocking every peer. *)

type vote = Yes | No

type crash_point =
  | No_crash
  | Before_prepare  (** coordinator dies before sending any PREPARE *)
  | After_prepare   (** coordinator dies after PREPAREs, before deciding *)
  | Mid_decision of int
      (** coordinator dies after sending the decision to only the first
          [k] participants *)

type config = {
  participants : int;
  site_clocks : int list;
      (** each participant's logical-clock reading (timestamps it has
          already observed); length must equal [participants] *)
  votes : vote list; (** how each participant votes *)
  coordinator_crash : crash_point;
  participant_crash : (int * [ `Before_vote | `After_vote ]) option;
      (** participant index (0-based) and when it dies *)
  timeout : int; (** participant patience before running termination *)
  max_retries : int; (** termination rounds before giving up blocked *)
  retry_cap : int; (** ceiling on the doubling inter-round backoff *)
  msg_faults : Msim.faults; (** network loss/duplication/reordering *)
  seed : int;
}

val default_config : config
(** 3 participants, clocks [0;0;0], all yes, no crashes, timeout 50,
    4 retries capped at 400, a reliable network, seed 1. *)

type site_status =
  | Committed of int (** with the commit timestamp *)
  | Aborted
  | Blocked (** prepared, decision unknowable — 2PC's blocking window *)
  | Crashed

type outcome = {
  statuses : site_status list; (** per participant *)
  commit_ts : int option; (** the coordinator's decision, if it made one *)
  final_clocks : int list;
      (** each participant's logical clock after the run — feed these
          into the next transaction's [site_clocks] to chain commits
          and observe monotone (precedes-consistent) timestamps *)
  messages : int;
  duration : int; (** virtual time at quiescence *)
}

val run : ?metrics:Weihl_obs.Metrics.Registry.t -> config -> outcome
(** @raise Invalid_argument on inconsistent configuration lengths.

    With [metrics], the run counts per-participant phase transitions
    ([tpc.site<i>.prepare], [.vote.yes]/[.vote.no], [.prepared],
    [.committed], [.aborted], [.refused], [.termination.round]) and the
    coordinator's decision ([tpc.coord.decide.commit]/[.abort]). *)

val atomic_commitment : outcome -> bool
(** No participant committed while another aborted (crashed and blocked
    sites are indeterminate and excluded) — the all-or-nothing
    invariant. *)

val pp_outcome : Format.formatter -> outcome -> unit

(** {1 The reusable commit driver}

    {!run} is a one-shot experiment over scripted votes and clocks.
    The sharded runtime instead drives one 2PC round {e per
    transaction} against live shards, so the protocol engine is also
    exposed with callback participants and an explicit decision
    record. *)

type decision = {
  committed : bool;  (** the coordinator decided commit *)
  decision_ts : int option;
      (** the agreed commit timestamp — [1 + max] of the participants'
          clock readings (possibly adjusted by [choose_ts]) *)
  outcomes : site_status list;  (** per participant, in order *)
  decision_messages : int;
  decision_duration : int;  (** virtual time at quiescence *)
}

type participant = {
  clock : unit -> int;
      (** the site's logical-clock reading, sampled with its yes-vote *)
  prepare : unit -> vote;
      (** called when PREPARE arrives; vote [Yes] only once the site
          can guarantee the transaction either way (effects durable) *)
  learn : [ `Commit of int | `Abort ] -> unit;
      (** called exactly once, when this site — having voted yes —
          learns the decision (from the coordinator or from a peer via
          cooperative termination).  Never called for a site that voted
          [No], crashed, or stayed blocked. *)
}

type fault = {
  f_coordinator_crash : crash_point;
  f_participant_crash : (int * [ `Before_vote | `After_vote ]) option;
  f_msg_faults : Msim.faults;
  f_partitions : (int * int) list;
      (** node pairs to cut from the start; node 0 is the coordinator,
          participant [i] is node [i + 1] *)
  f_heal_at : int option;  (** when all partitions heal, if ever *)
}

val no_fault : fault

type tracer = {
  on_message :
    src:int -> dst:int -> sent:int -> at:int -> label:string -> unit;
}
(** Observes every delivered protocol message: [src]/[dst] are Msim
    node ids (0 = coordinator, participant [i] = node [i + 1]), [sent]
    and [at] bound the flight in the round's virtual time, [label]
    names the message ([prepare], [vote.yes], [decide.commit], …;
    timer firings carry a [timer.] prefix and [src = dst]).  The
    sharded runtime turns these into Chrome-trace flow events. *)

val atomic_decision : decision -> bool
(** {!atomic_commitment} over a {!decision}. *)

val pp_decision : Format.formatter -> decision -> unit

module Driver : sig
  val commit :
    ?timeout:int ->
    ?max_retries:int ->
    ?retry_cap:int ->
    ?metrics:Weihl_obs.Metrics.Registry.t ->
    ?tracer:tracer ->
    ?fault:fault ->
    ?choose_ts:(int -> int) ->
    ?on_decide:([ `Commit of int | `Abort ] -> unit) ->
    seed:int ->
    participant list ->
    decision
  (** Run one atomic-commitment round over the participants.
      [choose_ts] maps the max-of-sites proposal to the final commit
      timestamp (identity by default) — a shard group routes it through
      its own clock to keep global timestamps unique.  [on_decide]
      fires at the coordinator's decision point, {e before} any DECIDE
      message is sent: it is the write-ahead hook for a durable
      decision log (presumed abort means only commits strictly need
      recording).  Defaults match {!default_config}. *)
end
