module Pqueue = Weihl_sim.Pqueue
module Rng = Weihl_sim.Rng

type 'msg event =
  | Deliver of { src : int; dst : int; sent : int; msg : 'msg }
  | Crash of int
  | Heal_all

type faults = { drop : float; duplicate : float; reorder : float }

let no_faults = { drop = 0.; duplicate = 0.; reorder = 0. }

let check_prob name p =
  if p < 0. || p > 1. then
    invalid_arg (Printf.sprintf "Msim.create: %s not a probability" name)

type 'msg t = {
  rng : Rng.t;
  min_delay : int;
  max_delay : int;
  faults : faults;
  queue : 'msg event Pqueue.t;
  crashed_nodes : (int, unit) Hashtbl.t;
  partitions : (int * int, unit) Hashtbl.t; (* keyed (min, max) *)
  handler : 'msg t -> node:int -> 'msg -> unit;
  on_deliver :
    ('msg t -> src:int -> dst:int -> sent:int -> 'msg -> unit) option;
  metrics : Weihl_obs.Metrics.Registry.t option;
  mutable time : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable reordered : int;
  nodes : int;
}

let create ?(min_delay = 1) ?(max_delay = 5) ?(faults = no_faults) ?metrics
    ?on_deliver ~seed ~nodes ~handler () =
  if min_delay < 0 || max_delay < min_delay then
    invalid_arg "Msim.create: bad delay range";
  check_prob "drop" faults.drop;
  check_prob "duplicate" faults.duplicate;
  check_prob "reorder" faults.reorder;
  {
    rng = Rng.create seed;
    min_delay;
    max_delay;
    faults;
    queue = Pqueue.create ();
    crashed_nodes = Hashtbl.create 4;
    partitions = Hashtbl.create 4;
    handler;
    on_deliver;
    metrics;
    time = 0;
    delivered = 0;
    dropped = 0;
    duplicated = 0;
    reordered = 0;
    nodes;
  }

let crashed t node = Hashtbl.mem t.crashed_nodes node

let pair_key a b = if a <= b then (a, b) else (b, a)
let partition t a b = Hashtbl.replace t.partitions (pair_key a b) ()
let heal t a b = Hashtbl.remove t.partitions (pair_key a b)
let heal_all t = Hashtbl.reset t.partitions
let partitioned t a b = Hashtbl.mem t.partitions (pair_key a b)

let count t name =
  match t.metrics with
  | None -> ()
  | Some reg ->
    Weihl_obs.Metrics.Counter.incr (Weihl_obs.Metrics.Registry.counter reg name)

let drop t why =
  t.dropped <- t.dropped + 1;
  count t ("msim.dropped." ^ why)

(* Each fault draws from the rng only when its probability is positive,
   so a fault-free simulation consumes exactly the draws it did before
   faults existed — seeds stay stable. *)
let flip t p = p > 0. && Rng.float t.rng 1.0 < p

let enqueue t ~src ~dst msg =
  let delay = Rng.int_range t.rng t.min_delay t.max_delay in
  let delay =
    if flip t t.faults.reorder then begin
      t.reordered <- t.reordered + 1;
      count t "msim.reordered";
      (* Push the message past anything sent within a normal delay
         window: delivery order no longer matches send order. *)
      delay + Rng.int_range t.rng t.max_delay (4 * t.max_delay)
    end
    else delay
  in
  Pqueue.push t.queue ~time:(t.time + delay)
    (Deliver { src; dst; sent = t.time; msg })

let send t ~src ~dst msg =
  if dst < 0 || dst >= t.nodes then invalid_arg "Msim.send: bad destination";
  if crashed t src then drop t "crashed_src"
  else if partitioned t src dst then drop t "partition"
  else if flip t t.faults.drop then drop t "fault"
  else begin
    enqueue t ~src ~dst msg;
    if flip t t.faults.duplicate then begin
      t.duplicated <- t.duplicated + 1;
      count t "msim.duplicated";
      enqueue t ~src ~dst msg
    end
  end

(* Timers are local alarms, not network traffic: they never drop,
   duplicate or reorder, or no protocol could make progress under
   faults. *)
let set_timer t ~node ~after msg =
  if not (crashed t node) then
    Pqueue.push t.queue ~time:(t.time + after)
      (Deliver { src = node; dst = node; sent = t.time; msg })

let crash t node = Hashtbl.replace t.crashed_nodes node ()
let crash_at t ~time node = Pqueue.push t.queue ~time (Crash node)
let heal_all_at t ~time = Pqueue.push t.queue ~time Heal_all
let now t = t.time
let messages_delivered t = t.delivered
let messages_dropped t = t.dropped
let messages_duplicated t = t.duplicated
let messages_reordered t = t.reordered

let run ?(until = 100_000) t =
  let rec loop () =
    match Pqueue.pop t.queue with
    | None -> ()
    | Some (time, ev) ->
      if time <= until then begin
        t.time <- max t.time time;
        (match ev with
        | Crash node -> crash t node
        | Heal_all -> heal_all t
        | Deliver { src; dst; sent; msg } ->
          if crashed t dst then drop t "crashed_dst"
          else begin
            t.delivered <- t.delivered + 1;
            (match t.on_deliver with
            | Some f -> f t ~src ~dst ~sent msg
            | None -> ());
            t.handler t ~node:dst msg
          end);
        loop ()
      end
  in
  loop ()
