module Cc = Weihl_cc
module Shard = Weihl_shard

(* Lock audit (multicore): [mutex] guards the facade's own state —
   [victims], [completed], and the group's coordinator-side metadata
   (gtxn tables, controls, journal).  It does NOT guard shard
   execution: with [domains > 1] the System calls inside
   [Shard.Group.invoke]/[commit] run on the shard's worker domain
   while the facade caller holds the mutex and blocks on the reply.
   That is safe — the mutex still serializes coordinator entry, so at
   most one facade call is in flight and each shard system stays
   domain-confined — but it means the blocking facade cannot overlap
   shard work across callers.  Parallel throughput comes from the
   batch APIs ([Group.invoke_batch]/[commit_batch] via
   [Mcore_driver]), not from this facade.

   [victims] and [completed] are only ever touched with [mutex] held:
   [resolve_deadlock] and the victim checks run inside [invoke]'s
   locked section, [Condition.wait] reacquires the mutex before the
   waiter re-reads [victims], and commit/abort broadcast while locked.
   No shard domain ever touches either. *)
type t = {
  group : Shard.Group.t;
  mutex : Mutex.t;
  completed : Condition.t;
      (* signalled whenever a transaction commits or aborts *)
  victims : (int, unit) Hashtbl.t;
      (* global transactions sacrificed to deadlock resolution *)
}

exception Refused of string
exception Deadlock_victim

let create ?policy ?metrics ?seed ?domains ?group_commit ?sync_cost ~shards ()
    =
  {
    group =
      Shard.Group.create ?policy ?metrics ?seed ?domains ?group_commit
        ?sync_cost ~shards ();
    mutex = Mutex.create ();
    completed = Condition.create ();
    victims = Hashtbl.create 8;
  }

let group t = t.group
let shutdown t = Shard.Group.shutdown t.group

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let shard_count t = Shard.Group.shard_count t.group
let shard_of t x = Shard.Group.shard_of t.group x

let add_object t x make =
  locked t (fun () -> Shard.Group.add_object t.group x make)

let begin_txn t activity =
  locked t (fun () -> Shard.Group.begin_txn t.group activity)

(* Break any cross-shard deadlock by aborting the youngest cycle
   member; mark it so its invoking thread raises on wake-up.  Returns
   whether anything was aborted (the caller must then retry instead of
   sleeping — the wakeup it just broadcast cannot wake itself). *)
let resolve_deadlock t =
  match Shard.Group.find_deadlock t.group with
  | None -> false
  | Some cycle ->
    let victim = Shard.Group.victim cycle in
    Shard.Group.abort ~reason:"deadlock" t.group victim;
    Hashtbl.replace t.victims (Shard.Gtxn.gid victim) ();
    Condition.broadcast t.completed;
    true

let invoke t g x op =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      let rec attempt () =
        if Hashtbl.mem t.victims (Shard.Gtxn.gid g) then begin
          Hashtbl.remove t.victims (Shard.Gtxn.gid g);
          raise Deadlock_victim
        end;
        match Shard.Group.invoke t.group g x op with
        | Shard.Group.Granted v -> v
        | Shard.Group.Refused why -> raise (Refused why)
        | Shard.Group.Wait _ ->
          let resolved = resolve_deadlock t in
          if Hashtbl.mem t.victims (Shard.Gtxn.gid g) then begin
            Hashtbl.remove t.victims (Shard.Gtxn.gid g);
            raise Deadlock_victim
          end;
          if not resolved then Condition.wait t.completed t.mutex;
          attempt ()
      in
      attempt ())

let commit t g =
  locked t (fun () ->
      let (_ : Shard.Group.commit_outcome) = Shard.Group.commit t.group g in
      Condition.broadcast t.completed;
      match Shard.Gtxn.status g with
      | Shard.Gtxn.Committed -> ()
      | Shard.Gtxn.Aborted -> raise (Refused "2pc round decided abort")
      | Shard.Gtxn.In_doubt ->
        (* Unreachable without injected faults: the synchronous
           fault-free round always reaches a decision. *)
        raise (Refused "2pc round left the transaction in doubt")
      | Shard.Gtxn.Active -> invalid_arg "Sharded.commit: txn still active")

let abort t g =
  locked t (fun () ->
      Shard.Group.abort t.group g;
      Condition.broadcast t.completed)

let history t s =
  locked t (fun () -> Cc.System.history (Shard.Group.system t.group s))

let durable_shard t s = locked t (fun () -> Shard.Group.durable_shard t.group s)
let committed_count t = locked t (fun () -> Shard.Group.committed_count t.group)

let atomically t activity body =
  let g = begin_txn t activity in
  match body g (fun x op -> invoke t g x op) with
  | result ->
    commit t g;
    Ok result
  | exception Refused why ->
    (if Shard.Gtxn.is_active g then abort t g);
    Error why
  | exception Deadlock_victim -> Error "deadlock victim"
  | exception e ->
    (* The transaction may already be dead if the exception raced a
       deadlock resolution; abort best-effort. *)
    (try if Shard.Gtxn.is_active g then abort t g
     with Invalid_argument _ -> ());
    raise e
