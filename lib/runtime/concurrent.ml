module Cc = Weihl_cc

type t = {
  system : Cc.System.t;
  mutex : Mutex.t;
  completed : Condition.t;
      (* signalled whenever a transaction commits or aborts *)
  victims : (int, unit) Hashtbl.t;
      (* transactions sacrificed to deadlock resolution *)
  metrics : Weihl_obs.Metrics.Registry.t option;
  mutable blocked_threads : int;
}

exception Refused of string
exception Deadlock_victim

let create ?policy ?metrics () =
  {
    system = Cc.System.create ?policy ();
    mutex = Mutex.create ();
    completed = Condition.create ();
    victims = Hashtbl.create 8;
    metrics;
    blocked_threads = 0;
  }

let count t name =
  match t.metrics with
  | None -> ()
  | Some reg ->
    Weihl_obs.Metrics.Counter.incr (Weihl_obs.Metrics.Registry.counter reg name)

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let add_object t obj = locked t (fun () -> Cc.System.add_object t.system obj)

(* Real time in microseconds since probe installation — the natural
   unit for Chrome-trace timestamps. *)
let default_now () =
  let t0 = Unix.gettimeofday () in
  fun () -> (Unix.gettimeofday () -. t0) *. 1e6

let set_probe ?now t sink =
  let now = match now with Some f -> f | None -> default_now () in
  locked t (fun () -> Cc.System.set_probe t.system ~now sink)

let clear_probe t = locked t (fun () -> Cc.System.clear_probe t.system)

let emit_blocked_gauge t =
  if Cc.System.probe_installed t.system then
    Cc.System.emit_probe t.system
      (Weihl_obs.Probe.Gauge_set
         {
           name = "threads.blocked";
           value = float_of_int t.blocked_threads;
         })
let log t = Cc.System.log t.system
let begin_txn t activity = locked t (fun () -> Cc.System.begin_txn t.system activity)

(* Break any deadlock by aborting the youngest cycle member; mark it so
   its invoking thread raises on wake-up.  Returns whether anything was
   aborted (the caller must then retry instead of sleeping — the wakeup
   it just broadcast cannot wake itself). *)
let resolve_deadlock t =
  match Cc.System.find_deadlock t.system with
  | None -> false
  | Some cycle ->
    let victim = Cc.Waits_for.victim cycle in
    if Cc.System.probe_installed t.system then
      Cc.System.emit_probe t.system
        (Weihl_obs.Probe.Deadlock_victim
           {
             victim = Cc.Txn.id victim;
             cycle = List.map Cc.Txn.id cycle;
           });
    Cc.System.abort ~reason:"deadlock" t.system victim;
    Hashtbl.replace t.victims (Cc.Txn.id victim) ();
    Condition.broadcast t.completed;
    true

let invoke t txn x op =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      let rec attempt () =
        if Hashtbl.mem t.victims (Cc.Txn.id txn) then begin
          Hashtbl.remove t.victims (Cc.Txn.id txn);
          raise Deadlock_victim
        end;
        match Cc.System.invoke t.system txn x op with
        | Cc.Atomic_object.Granted v -> v
        | Cc.Atomic_object.Refused why -> raise (Refused why)
        | Cc.Atomic_object.Wait _ ->
          let resolved = resolve_deadlock t in
          if Hashtbl.mem t.victims (Cc.Txn.id txn) then begin
            Hashtbl.remove t.victims (Cc.Txn.id txn);
            raise Deadlock_victim
          end;
          (* If we just broke a deadlock, the blocker may be gone:
             retry at once (our own broadcast cannot wake us).
             Otherwise sleep until some transaction completes. *)
          if not resolved then begin
            t.blocked_threads <- t.blocked_threads + 1;
            emit_blocked_gauge t;
            Fun.protect
              ~finally:(fun () ->
                t.blocked_threads <- t.blocked_threads - 1;
                emit_blocked_gauge t)
              (fun () -> Condition.wait t.completed t.mutex)
          end;
          attempt ()
      in
      attempt ())

let commit t txn =
  locked t (fun () ->
      Cc.System.commit t.system txn;
      Condition.broadcast t.completed)

let abort t txn =
  locked t (fun () ->
      Cc.System.abort t.system txn;
      Condition.broadcast t.completed)

let history t = locked t (fun () -> Cc.System.history t.system)

let atomically t activity body =
  let txn = begin_txn t activity in
  match body txn (fun x op -> invoke t txn x op) with
  | result ->
    commit t txn;
    count t "txn.committed";
    Ok result
  | exception Refused why ->
    abort t txn;
    count t "txn.abort.refused";
    Error why
  | exception Deadlock_victim ->
    count t "txn.abort.deadlock";
    Error "deadlock victim"
  | exception e ->
    (* The transaction may already be dead if the exception raced a
       deadlock resolution; abort best-effort. *)
    (try abort t txn with Invalid_argument _ -> ());
    raise e

let durable t = locked t (fun () -> Cc.Event_log.durable (Cc.System.log t.system))

let restore_durable order t text =
  locked t (fun () -> Cc.Recovery.restore_durable order t.system text)
