(** A thread-safe, blocking facade over the sharded runtime
    ({!Weihl_shard.Group}) for multicore OCaml.

    The counterpart of {!Concurrent} when the objects are partitioned:
    one mutex guards the whole group, a condition variable wakes
    blocked invokers whenever any transaction completes, and
    cross-shard deadlocks (the per-shard waits-for graphs merged over
    the global transactions) are broken by aborting the youngest cycle
    member.

    Commit is transparent: a transaction that touched one shard
    commits locally, one that touched several runs a two-phase commit
    round across its shards — both behind the same {!commit} call.
    The simulated 2PC messaging runs synchronously under the lock, so
    a fault-free round always reaches a decision before {!commit}
    returns. *)

open Weihl_event

type t

exception Refused of string
(** The protocol refused the operation; the caller must {!abort}. *)

exception Deadlock_victim
(** The transaction was aborted to break a deadlock; the transaction
    is already dead — do not call {!abort}. *)

val create :
  ?policy:Weihl_cc.System.ts_policy ->
  ?metrics:Weihl_obs.Shard_metrics.t ->
  ?seed:int ->
  ?domains:int ->
  ?group_commit:bool ->
  ?sync_cost:(unit -> unit) ->
  shards:int ->
  unit ->
  t
(** [metrics] must have been created for the same shard count.
    [domains] / [group_commit] / [sync_cost] pass through to
    {!Weihl_shard.Group.create}.  Note that the facade mutex
    serializes callers, so [domains > 1] does not overlap shard work
    across facade calls — it exists so one [t] can share a group with
    the batch APIs (see {!group}).  Call {!shutdown} when done with a
    multi-domain facade. *)

val group : t -> Weihl_shard.Group.t
(** The underlying shard group — for the batch APIs
    ({!Weihl_shard.Group.invoke_batch} / [commit_batch]) and
    observability.  Callers using it concurrently with facade threads
    must do their own locking; the facade mutex is private. *)

val shutdown : t -> unit
(** Join the group's worker domains (no-op at [domains = 1]). *)

val shard_count : t -> int

val shard_of : t -> Object_id.t -> int
(** The shard the router homes this object on. *)

val add_object :
  t ->
  Object_id.t ->
  (Weihl_cc.Event_log.t -> Object_id.t -> Weihl_cc.Atomic_object.t) ->
  unit
(** Unlike {!Concurrent.add_object} this takes a constructor: the
    router picks the home shard, whose event log the object must
    share. *)

val begin_txn : t -> Activity.t -> Weihl_shard.Gtxn.t

val invoke :
  t -> Weihl_shard.Gtxn.t -> Object_id.t -> Operation.t -> Value.t
(** Blocks while the protocol at the object's home shard says wait.
    @raise Refused when the protocol refuses the operation (or the
    home shard is down).
    @raise Deadlock_victim when this transaction was chosen to break a
    cross-shard deadlock while waiting. *)

val commit : t -> Weihl_shard.Gtxn.t -> unit
(** Local commit or a full 2PC round, by fan-out.
    @raise Refused when the round decides abort (the transaction is
    already dead — do not call {!abort}). *)

val abort : t -> Weihl_shard.Gtxn.t -> unit

val history : t -> int -> History.t
(** Snapshot of one shard's event log (takes the lock). *)

val durable_shard : t -> int -> string
(** One shard's crash-safe WAL text, prepared-state control records
    included (takes the lock); see {!Weihl_cc.Wal}. *)

val committed_count : t -> int

val atomically :
  t ->
  Activity.t ->
  (Weihl_shard.Gtxn.t -> (Object_id.t -> Operation.t -> Value.t) -> 'a) ->
  ('a, string) result
(** [atomically t activity body] runs [body txn invoke] in a fresh
    global transaction, committing (locally or via 2PC) on normal
    return and aborting on {!Refused} or {!Deadlock_victim} (returned
    as [Error]); other exceptions abort and re-raise. *)
