(** A thread-safe, blocking facade over {!Weihl_cc.System} for
    multicore OCaml.

    The protocol objects are deliberately single-threaded state
    machines (the paper's objects encapsulate a synchronization
    {e policy}; the mechanics of mutual exclusion are beneath its
    model).  This wrapper supplies the mechanics: one mutex guards the
    system, a condition variable wakes blocked invokers whenever any
    transaction completes, and deadlocks are broken by aborting the
    youngest transaction in the cycle ({!Deadlock_victim} is raised in
    that transaction's invoking thread).

    Domains (or threads) call {!invoke}, which blocks until the
    operation is granted, the protocol refuses it, or the caller is
    sacrificed to a deadlock. *)

open Weihl_event

type t

exception Refused of string
(** The protocol refused the operation; the caller must {!abort}. *)

exception Deadlock_victim
(** The transaction was aborted to break a deadlock; the transaction
    is already dead — do not call {!abort}. *)

val create :
  ?policy:Weihl_cc.System.ts_policy ->
  ?metrics:Weihl_obs.Metrics.Registry.t -> unit -> t
(** With [metrics], {!atomically} ticks [txn.committed] and the
    per-cause abort counters [txn.abort.refused] /
    [txn.abort.deadlock] — retries and deadlock breaks are visible in
    the registry instead of silent. *)

val add_object : t -> Weihl_cc.Atomic_object.t -> unit

val log : t -> Weihl_cc.Event_log.t
(** For building objects: they must share the system's log. *)

val begin_txn : t -> Activity.t -> Weihl_cc.Txn.t

val invoke : t -> Weihl_cc.Txn.t -> Object_id.t -> Operation.t -> Value.t
(** Blocks while the protocol says wait.
    @raise Refused when the protocol refuses the operation.
    @raise Deadlock_victim when this transaction was chosen to break a
    deadlock while waiting. *)

val commit : t -> Weihl_cc.Txn.t -> unit
val abort : t -> Weihl_cc.Txn.t -> unit

val history : t -> History.t
(** Snapshot of the event log (takes the lock). *)

val durable : t -> string
(** The crash-safe WAL form of the event log (takes the lock); see
    {!Weihl_cc.Wal}. *)

val restore_durable :
  Weihl_cc.Recovery.order -> t -> string ->
  (Weihl_cc.Recovery.report, Weihl_cc.Recovery.failure) result
(** The restart half of a crash-restart cycle: decode a durable log
    and replay its committed transactions into this (fresh) runtime's
    objects, after which normal traffic can resume.  Takes the lock
    for the whole replay. *)

val atomically :
  t -> Activity.t -> (Weihl_cc.Txn.t -> (Object_id.t -> Operation.t -> Value.t) -> 'a) ->
  ('a, string) result
(** [atomically t activity body] runs [body txn invoke] in a fresh
    transaction, committing on normal return and aborting on {!Refused}
    or {!Deadlock_victim} (returned as [Error]); other exceptions abort
    and re-raise. *)

(** {1 Instrumentation}

    Install a {!Weihl_obs.Probe.sink} on the underlying system.  The
    default clock is real time in microseconds since installation (the
    Chrome-trace unit); pass [now] to override.  While a probe is
    installed the runtime additionally samples a [threads.blocked]
    gauge around every sleep on the condition variable and emits a
    deadlock-victim event whenever it breaks a cycle. *)

val set_probe : ?now:(unit -> float) -> t -> Weihl_obs.Probe.sink -> unit
val clear_probe : t -> unit
