(** Cross-shard behavioural probes.

    Pair probes ({!Probe}) certify one object under one local system;
    the theorem they lean on — local atomicity composes — also needs
    the {e global} half: commit decisions and timestamps must be agreed
    atomically across objects.  These probes exercise exactly that
    seam.  Each probe builds a two-shard {!Weihl_shard.Group} holding
    two instances of the catalogue object, one per shard, and drives
    the cross-shard pattern no single shard sees whole:

    - T1 invokes [p] at object [a] (shard 0), then at [b] (shard 1);
    - T2 invokes [q] at [b], then at [a] — the opposite order;
    - both complete (commit/commit in either order, or one aborts),
      multi-shard commits running real 2PC.

    A completed pattern is {e unsound} if any global-atomicity
    condition fails: a transaction committed on one shard but not
    another, a committed transaction's shards disagree on its
    timestamp, legs are left stuck in-doubt after resolution, or the
    merged committed projection (in the group's serialization order)
    fails to replay against one combined system holding every object.
    Blocked patterns are conservative and never flagged — the
    per-shard {!Probe} pass already measures looseness.

    {2 Wide probes}

    The same opposite-order pattern is additionally walked across a
    {e three}-shard group (T1 forward over objects [a, b, c], T2
    backward), completed both cleanly and with a participant crash
    injected mid-2PC: the middle shard dies after its yes-vote, T1's
    decision is reached without it, the dead shard recovers from its
    WAL and resolves its in-doubt leg from the decision log.  Two
    shards cannot build the shape where a decided commit must reach a
    shard that was down at decision time while a third already applied
    it. *)

open Weihl_event

type status = Granted_sound | Granted_unsound of string | Blocked

type xpair = {
  x_setup : Operation.t list;
  x_variant : string;
  x_p : Operation.t;
  x_q : Operation.t;
  x_status : status;
}

type wide = {
  w_setup : Operation.t list;
  w_p : Operation.t;
  w_q : Operation.t;
  w_mode : string;  (** ["clean"] or ["participant-crash"] *)
  w_problem : string;
}

type t = {
  probed : int;
  granted : int;
  blocked : int;
  unsound : xpair list;
  wide_probed : int;
  wide_granted : int;
  wide_blocked : int;
  wide_unsound : wide list;
}

val run : Catalog.entry -> setups:Operation.t list list -> t
(** Probe every (setup, p, q) combination over the entry's alphabet —
    under hybrid, additionally with a read-only T2 restricted to the
    domain's read-only operations — then the three-shard wide pattern
    with and without the mid-2PC participant crash. *)

val pp_xpair : Format.formatter -> xpair -> unit
val pp_wide : Format.formatter -> wide -> unit
