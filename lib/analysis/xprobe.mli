(** Cross-shard behavioural probes.

    Pair probes ({!Probe}) certify one object under one local system;
    the theorem they lean on — local atomicity composes — also needs
    the {e global} half: commit decisions and timestamps must be agreed
    atomically across objects.  These probes exercise exactly that
    seam.  Each probe builds a two-shard {!Weihl_shard.Group} holding
    two instances of the catalogue object, one per shard, and drives
    the cross-shard pattern no single shard sees whole:

    - T1 invokes [p] at object [a] (shard 0), then at [b] (shard 1);
    - T2 invokes [q] at [b], then at [a] — the opposite order;
    - both complete (commit/commit in either order, or one aborts),
      multi-shard commits running real 2PC.

    A completed pattern is {e unsound} if any global-atomicity
    condition fails: a transaction committed on one shard but not the
    other, a committed transaction's shards disagree on its timestamp,
    or the merged committed projection (in the group's serialization
    order) fails to replay against one combined system holding both
    objects.  Blocked patterns are conservative and never flagged —
    the per-shard {!Probe} pass already measures looseness. *)

open Weihl_event

type status = Granted_sound | Granted_unsound of string | Blocked

type xpair = {
  x_setup : Operation.t list;
  x_variant : string;
  x_p : Operation.t;
  x_q : Operation.t;
  x_status : status;
}

type t = {
  probed : int;
  granted : int;
  blocked : int;
  unsound : xpair list;
}

val run : Catalog.entry -> setups:Operation.t list list -> t
(** Probe every (setup, p, q) combination over the entry's alphabet —
    under hybrid, additionally with a read-only T2 restricted to the
    domain's read-only operations. *)

val pp_xpair : Format.formatter -> xpair -> unit
