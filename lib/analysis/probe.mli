(** The synthetic single-object probe harness: extract a protocol's
    effective conflict predicate by driving its real object — behind a
    real {!Weihl_cc.System} under the protocol's timestamp policy —
    through bounded schedules, and judge every decision against the
    protocol's atomicity class.

    {2 Pair probes}

    For every representative committed setup (serial alphabet
    sequences up to the probe depth, deduplicated by observational
    equality of the frontier they reach) and every ordered alphabet
    pair [(p, q)]: transaction [t1] executes [p], then a concurrent
    [t2] attempts [q].

    - If both are {e granted}, the protocol has committed itself: it
      cannot prevent any completion, so each completion branch (both
      commit — in both orders for hybrid protocols, whose commit
      timestamps follow commit order — and each one-aborts branch) is
      run to the end and the resulting real history is checked with
      the class decision procedure ({!Weihl_spec.Atomicity}).  Any
      failing branch makes the pair {e unsound}.
    - If [t2] is {e blocked} (waits or is refused), the spec decides
      whether blocking was necessary: the pair is {e loose} when some
      spec-permissible result for [q] would have kept every completion
      inside the class — concurrency the protocol gives away.

    Static protocols are probed under both timestamp orders of the
    pair; hybrid protocols with an update and with a read-only
    partner.

    {2 Triple probes}

    Static protocols additionally get three-transaction probes with
    scripted timestamps (t1@10 uncommitted, t2@20 committed between
    the grants, t3@5 granted last, then t1 aborts or commits): the
    minimal shape of the PR 3 multiversion bug, where a grant was
    justified by an uncommitted later-timestamp execution that
    vanished on abort.  Pair probes provably cannot reach it.

    Hybrid protocols get the later-reader variant: t2 commits an
    update while t1's intentions are still outstanding (a {e
    contended} commit), then a read-only t3 initiates and must observe
    exactly the committed versions before its timestamp, whatever t1
    then does.  No pair schedule places a reader after a contended
    commit, so a hybrid object that mishandles its version archive
    under contention passes every pair probe.

    Dynamic protocols get the dynamic-class triple: t2 commits between
    two concurrent grants — moving the committed frontier under t1's
    outstanding intentions — then an update t3 is granted against the
    new frontier before t1 aborts or commits.  This is the shape that
    stresses {e data-dependent} grants (a synthesized table's cell
    verdicts were quantified from single frontiers; here three views
    compose), and no pair probe moves the committed state under an
    open grant.

    {2 Multi-op probes}

    Every protocol additionally gets multi-op transactions: t1
    executes two operations before t2 tries one, so t1's second grant
    was validated against its own view (committed plus its first
    intention) rather than the committed frontier.  Granted multis run
    every completion branch exactly like pairs; blocked multis are
    conservative and never counted loose. *)

open Weihl_event

type pair_status =
  | Granted_sound
  | Granted_unsound of string
  | Blocked_justified
  | Blocked_loose of string

type pair = {
  setup : Operation.t list;
  variant : string;
  p : Operation.t;
  q : Operation.t;
  status : pair_status;
}

type triple = {
  t_setup : Operation.t list;
  t_p : Operation.t;
  t_q : Operation.t;
  t_r : Operation.t;
  branch : string;
  problem : string;
}

type multi = {
  m_setup : Operation.t list;
  m_variant : string;
  m_p1 : Operation.t;
  m_p2 : Operation.t;
  m_q : Operation.t;
  m_problem : string;
}

type t = {
  setups_enumerated : int;
  setups_distinct : int;
  setups_skipped : int;
      (** representative setups some probe could not replay serially *)
  pairs : pair list;
  triples_probed : int;
  triples_granted : int;
  triple_unsound : triple list;
  multis_probed : int;
  multis_granted : int;
  multi_unsound : multi list;
}

val run : depth:int -> Catalog.entry -> t

val enumerate_setups : Domain.t -> depth:int -> Operation.t list list * int
(** Representative committed setups (deduplicated by observational
    frontier equality) with the raw enumeration count — shared with
    the cross-shard probes ({!Xprobe}). *)

val pp_pair : Format.formatter -> pair -> unit
val pp_triple : Format.formatter -> triple -> unit
val pp_multi : Format.formatter -> multi -> unit
