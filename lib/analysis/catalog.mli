(** The protocols under certification: the fourteen hand-written
    protocols the fault harness sweeps ({!Weihl_fault.Harness.catalog})
    plus one synthesized [derived_<adt>] protocol per registry domain
    ({!Synthesize}), paired with the probe {!Domain} of the ADT each
    runs, minus the workloads — the certifier drives its own probe
    schedules. *)

open Weihl_event

type entry = {
  name : string;
  policy : Weihl_cc.System.ts_policy;
      (** which local atomicity property the protocol claims, hence
          which checker judges its probe histories *)
  domain : Domain.t;
  make_object :
    Weihl_cc.Event_log.t -> Object_id.t -> Weihl_cc.Atomic_object.t;
}

val all : entry list
val find : string -> entry option

val policy_name : Weihl_cc.System.ts_policy -> string
(** ["dynamic"], ["static"] or ["hybrid"] — the atomicity class. *)
