(** Certificates for the hand-written commutativity tables: every
    alphabet pair of a {!Domain} is compared against the relation
    {!Weihl_theory.Commutativity.commute_on_reachable} derives from the
    sequential specification.

    An entry is {e unsound} when the table claims the pair commutes but
    the derivation finds a counterexample — a locking protocol trusting
    the table would grant an impermissible interleaving.  It is
    {e loose} when the table conservatively blocks a pair the
    derivation proves compatible on the bounded space — concurrency
    lost.  {e Unknown} entries mark pairs the bound could not decide
    and are reported, never silently dropped. *)

open Weihl_event

type entry = {
  p : Operation.t;
  q : Operation.t;
  hand : bool;  (** what the table under certification claims *)
  derived : Weihl_theory.Commutativity.verdict;
}

type t = {
  adt : string;
  depth : int;
  stats : Weihl_theory.Commutativity.stats;
      (** exploration size, so the bound behind the certificate is
          visible in reports *)
  entries : entry list;
}

val unsound : t -> entry list
val loose : t -> entry list
val unknown : t -> entry list

val certify :
  ?table:(Operation.t -> Operation.t -> bool) ->
  ?budget:int ->
  depth:int ->
  Domain.t ->
  t
(** Certify [table] (default: the domain's own hand-written [commutes])
    against the derived relation at exploration depth [depth].  The
    [?table] override exists for the mutation self-test.  [budget]
    turns the exploration into the stabilized-depth search: levels grow
    past [depth] up to [budget] until the frontier count stabilizes
    ([stats.depth_used] / [stats.stabilized] report the outcome). *)

val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit
