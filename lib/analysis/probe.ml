open Weihl_event
module Cc = Weihl_cc
module Seq_spec = Weihl_spec.Seq_spec
module Spec_env = Weihl_spec.Spec_env
module Atomicity = Weihl_spec.Atomicity
module Commutativity = Weihl_theory.Commutativity

let obj = Object_id.v "x"

type pair_status =
  | Granted_sound
  | Granted_unsound of string
  | Blocked_justified
  | Blocked_loose of string

type pair = {
  setup : Operation.t list;
  variant : string;
  p : Operation.t;
  q : Operation.t;
  status : pair_status;
}

type triple = {
  t_setup : Operation.t list;
  t_p : Operation.t;
  t_q : Operation.t;
  t_r : Operation.t;
  branch : string;
  problem : string;
}

type multi = {
  m_setup : Operation.t list;
  m_variant : string;
  m_p1 : Operation.t;
  m_p2 : Operation.t;
  m_q : Operation.t;
  m_problem : string;
}

type t = {
  setups_enumerated : int;
  setups_distinct : int;
  setups_skipped : int;
  pairs : pair list;
  triples_probed : int;
  triples_granted : int;
  triple_unsound : triple list;
  multis_probed : int;
  multis_granted : int;
  multi_unsound : multi list;
}

(* A variant fixes everything about a pair probe other than the two
   operations: the timestamp script (static protocols are probed with
   the second transaction both later and earlier in timestamp order)
   and the kind of the second transaction (hybrid protocols are probed
   with an update and with a read-only partner). *)
type variant = {
  label : string;
  ts_script : int list option;
  t2_read_only : bool;
  t1_later : bool;
}

let variants policy =
  match policy with
  | `None_ ->
    [
      {
        label = "concurrent";
        ts_script = None;
        t2_read_only = false;
        t1_later = false;
      };
    ]
  | `Static ->
    [
      {
        label = "t1-earlier-ts";
        ts_script = Some [ 1; 10; 20 ];
        t2_read_only = false;
        t1_later = false;
      };
      {
        label = "t1-later-ts";
        ts_script = Some [ 1; 20; 10 ];
        t2_read_only = false;
        t1_later = true;
      };
    ]
  | `Hybrid ->
    [
      {
        label = "update-update";
        ts_script = None;
        t2_read_only = false;
        t1_later = false;
      };
      {
        label = "update-readonly";
        ts_script = None;
        t2_read_only = true;
        t1_later = false;
      };
    ]

let fresh (entry : Catalog.entry) ts_script =
  let sys = Cc.System.create ~policy:entry.Catalog.policy () in
  (match ts_script with
  | None -> ()
  | Some script ->
    let remaining = ref script in
    Cc.System.set_ts_source sys (fun () ->
        match !remaining with
        | t :: rest ->
          remaining := rest;
          Timestamp.v t
        | [] -> invalid_arg "probe: timestamp script exhausted"));
  Cc.System.add_object sys
    (entry.Catalog.make_object (Cc.System.log sys) obj);
  sys

(* Drive the committed setup; [None] when the protocol does not grant
   some setup operation serially (the setup is then unusable for this
   protocol and skipped). *)
let run_setup sys ops =
  let txn = Cc.System.begin_txn sys (Activity.update "setup") in
  let rec go acc = function
    | [] ->
      Cc.System.commit sys txn;
      Some (List.rev acc)
    | op :: rest -> (
      match Cc.System.invoke sys txn obj op with
      | Cc.Atomic_object.Granted res -> go (res :: acc) rest
      | Cc.Atomic_object.Wait _ | Cc.Atomic_object.Refused _ -> None)
  in
  go [] ops

(* The frontier the committed setup leaves, computed from the results
   the protocol actually returned; [None] when those results do not
   replay against the specification (a serial divergence — the granted
   pair checks will flag it). *)
let observed_frontier spec ops results =
  List.fold_left2
    (fun f op res ->
      match f with None -> None | Some f -> Seq_spec.advance f op res)
    (Some (Seq_spec.start spec))
    ops results

(* Enumerate serial setups up to [depth] operations, following the
   first outcome of each step, and keep one representative per
   observationally distinct frontier.  Probing is bounded anyway, so
   two setups the alphabet cannot tell apart in two steps would give
   identical probe behaviour at the spec level. *)
let enumerate_setups (d : Domain.t) ~depth =
  let probes = d.Domain.alphabet in
  let enumerated = ref 0 in
  let reps : (Operation.t list * Seq_spec.frontier) list ref = ref [] in
  let known f =
    let size = Seq_spec.frontier_size f in
    List.exists
      (fun (_, g) ->
        Seq_spec.frontier_size g = size
        && (Seq_spec.equal_frontier g f
           || Commutativity.observationally_equal ~probes ~depth:2 g f))
      !reps
  in
  let queue = Queue.create () in
  let add path f remaining =
    incr enumerated;
    if not (known f) then begin
      reps := (path, f) :: !reps;
      if remaining > 0 then Queue.add (path, f, remaining) queue
    end
  in
  add [] (Seq_spec.start d.Domain.spec) depth;
  while not (Queue.is_empty queue) do
    let path, f, remaining = Queue.pop queue in
    List.iter
      (fun op ->
        match Seq_spec.outcomes f op with
        | (_, f') :: _ -> add (path @ [ op ]) f' (remaining - 1)
        | [] -> ())
      d.Domain.alphabet
  done;
  (List.rev_map fst !reps, !enumerated)

let check_atomicity policy env h =
  match policy with
  | `None_ -> Atomicity.dynamic_atomic env h
  | `Static -> Atomicity.static_atomic env h
  | `Hybrid -> Atomicity.hybrid_atomic env h

(* Would granting [q] some spec-permissible result have kept every
   completion the protocol cannot prevent inside its atomicity class?
   [f] is the committed setup frontier and [rp] the result already
   granted to the first transaction.  The serialization orders that
   must replay depend on the class and the variant: a dynamic or
   hybrid update pair may be forced into either commit order by other
   objects; a static pair is pinned to timestamp order; a hybrid
   read-only partner serializes at its initiation timestamp, before
   the update's commit timestamp. *)
let grant_would_be_sound (variant : variant) policy f p rp q =
  match Seq_spec.advance f p rp with
  | None -> false
  | Some f_p ->
    List.exists
      (fun (rq, f_q) ->
        let pq = Option.is_some (Seq_spec.advance f_p q rq) in
        let qp = Option.is_some (Seq_spec.advance f_q p rp) in
        match policy with
        | `Static -> if variant.t1_later then qp else pq
        | `Hybrid -> if variant.t2_read_only then qp else pq && qp
        | `None_ -> pq && qp)
      (Seq_spec.outcomes f q)

type run_outcome =
  | Setup_blocked
  | T1_blocked of Value.t list
  | T2_blocked of Value.t list * Value.t * string
  | Completed of Value.t list * Value.t * Value.t * History.t
  | Crashed of string
      (** the protocol itself raised while completing the granted pair —
          e.g. recorded intentions that no longer replay at commit *)

let run_pair entry (variant : variant) setup p q ~completion =
  let sys = fresh entry variant.ts_script in
  match run_setup sys setup with
  | None -> Setup_blocked
  | Some setup_results -> (
    let t1 = Cc.System.begin_txn sys (Activity.update "t1") in
    match Cc.System.invoke sys t1 obj p with
    | Cc.Atomic_object.Wait _ | Cc.Atomic_object.Refused _ ->
      T1_blocked setup_results
    | Cc.Atomic_object.Granted rp -> (
      let a2 =
        if variant.t2_read_only then Activity.read_only "t2"
        else Activity.update "t2"
      in
      let t2 = Cc.System.begin_txn sys a2 in
      match Cc.System.invoke sys t2 obj q with
      | Cc.Atomic_object.Wait _ -> T2_blocked (setup_results, rp, "waits")
      | Cc.Atomic_object.Refused _ -> T2_blocked (setup_results, rp, "refused")
      | Cc.Atomic_object.Granted rq -> (
        match
          match completion with
          | `CC ->
            Cc.System.commit sys t1;
            Cc.System.commit sys t2
          | `CC_rev ->
            Cc.System.commit sys t2;
            Cc.System.commit sys t1
          | `C1A2 ->
            Cc.System.commit sys t1;
            Cc.System.abort sys t2
          | `A1C2 ->
            Cc.System.abort sys t1;
            Cc.System.commit sys t2
        with
        | () -> Completed (setup_results, rp, rq, Cc.System.history sys)
        | exception exn -> Crashed (Printexc.to_string exn))))

let completion_name = function
  | `CC -> "both-commit"
  | `CC_rev -> "both-commit-reversed"
  | `C1A2 -> "t2-aborts"
  | `A1C2 -> "t1-aborts"

let probe_pair entry (variant : variant) env setup p q =
  let spec = entry.Catalog.domain.Domain.spec in
  match run_pair entry variant setup p q ~completion:`CC with
  | Setup_blocked -> None
  | T1_blocked setup_results -> (
    (* The first transaction is blocked with no concurrency at all;
       justified only if the specification itself permits no answer. *)
    match observed_frontier spec setup setup_results with
    | None -> Some Blocked_justified
    | Some f ->
      if Seq_spec.outcomes f p = [] then Some Blocked_justified
      else
        Some
          (Blocked_loose
             "blocked serially though the specification permits an answer"))
  | T2_blocked (setup_results, rp, how) -> (
    match observed_frontier spec setup setup_results with
    | None -> Some Blocked_justified
    | Some f ->
      if grant_would_be_sound variant entry.Catalog.policy f p rp q then
        Some
          (Blocked_loose
             (Fmt.str
                "%s though some permissible result keeps every completion %s \
                 atomic"
                how
                (Catalog.policy_name entry.Catalog.policy)))
      else Some Blocked_justified)
  | Crashed exn ->
    Some
      (Granted_unsound
         (Fmt.str "granted concurrently but completion %s raised: %s"
            (completion_name `CC) exn))
  | Completed (_, _, _, first_history) ->
    (* The pair was granted concurrently: every completion the protocol
       cannot prevent must stay inside its atomicity class. *)
    let completions =
      match entry.Catalog.policy with
      | `Hybrid -> [ `CC_rev; `C1A2; `A1C2 ]
      | `None_ | `Static -> [ `C1A2; `A1C2 ]
    in
    let not_atomic branch =
      Fmt.str "completion %s is not %s atomic" (completion_name branch)
        (Catalog.policy_name entry.Catalog.policy)
    in
    let failure =
      if not (check_atomicity entry.Catalog.policy env first_history) then
        Some (not_atomic `CC)
      else
        List.find_map
          (fun completion ->
            match run_pair entry variant setup p q ~completion with
            | Completed (_, _, _, h) ->
              if check_atomicity entry.Catalog.policy env h then None
              else Some (not_atomic completion)
            | Crashed exn ->
              Some
                (Fmt.str "completion %s raised: %s"
                   (completion_name completion) exn)
            | Setup_blocked | T1_blocked _ | T2_blocked _ ->
              (* Deterministic replay of an identical prefix. *)
              assert false)
          completions
    in
    Some
      (match failure with
      | None -> Granted_sound
      | Some why -> Granted_unsound ("granted concurrently but " ^ why))

(* Three-transaction probes for static protocols.  Timestamp-ordered
   serialization is sensitive to a shape no pair can build: a commit
   wedged between two grants, followed by the abort of a transaction
   whose uncommitted execution justified the later grant.  The PR 3
   multiversion bug is exactly this shape: T1 (ts 10) holds [p]
   uncommitted, T2 (ts 20) commits [q], and T3's [r] at ts 5 is granted
   on the strength of T1's pending execution; when T1 aborts, the
   committed history no longer replays in timestamp order. *)
let run_triple entry setup p q r ~branch =
  let sys = fresh entry (Some [ 1; 10; 20; 5 ]) in
  match run_setup sys setup with
  | None -> None
  | Some _ -> (
    let t1 = Cc.System.begin_txn sys (Activity.update "t1") in
    match Cc.System.invoke sys t1 obj p with
    | Cc.Atomic_object.Wait _ | Cc.Atomic_object.Refused _ -> None
    | Cc.Atomic_object.Granted _ -> (
      let t2 = Cc.System.begin_txn sys (Activity.update "t2") in
      match Cc.System.invoke sys t2 obj q with
      | Cc.Atomic_object.Wait _ | Cc.Atomic_object.Refused _ -> None
      | Cc.Atomic_object.Granted _ -> (
        match
          Cc.System.commit sys t2;
          let t3 = Cc.System.begin_txn sys (Activity.update "t3") in
          match Cc.System.invoke sys t3 obj r with
          | Cc.Atomic_object.Wait _ | Cc.Atomic_object.Refused _ -> None
          | Cc.Atomic_object.Granted _ ->
            (match branch with
            | `T1_aborts -> Cc.System.abort sys t1
            | `T1_commits -> Cc.System.commit sys t1);
            Cc.System.commit sys t3;
            Some (Ok (Cc.System.history sys))
        with
        | outcome -> outcome
        | exception exn -> Some (Error (Printexc.to_string exn)))))

(* Three-transaction probes for hybrid protocols.  Hybrid serializes
   committed updates by commit timestamp and read-only transactions at
   their initiation timestamp, so its observers are {e later} readers —
   and the shape no pair can build is a commit wedged between two
   concurrent grants followed by one: T2 commits an update while T1's
   intentions are still outstanding, then read-only T3 initiates and
   must observe exactly the committed versions before its timestamp,
   whatever T1 then does. *)
let run_triple_hybrid entry setup p q r ~branch =
  let sys = fresh entry None in
  match run_setup sys setup with
  | None -> None
  | Some _ -> (
    let t1 = Cc.System.begin_txn sys (Activity.update "t1") in
    match Cc.System.invoke sys t1 obj p with
    | Cc.Atomic_object.Wait _ | Cc.Atomic_object.Refused _ -> None
    | Cc.Atomic_object.Granted _ -> (
      let t2 = Cc.System.begin_txn sys (Activity.update "t2") in
      match Cc.System.invoke sys t2 obj q with
      | Cc.Atomic_object.Wait _ | Cc.Atomic_object.Refused _ -> None
      | Cc.Atomic_object.Granted _ -> (
        match
          Cc.System.commit sys t2;
          let t3 = Cc.System.begin_txn sys (Activity.read_only "t3") in
          match Cc.System.invoke sys t3 obj r with
          | Cc.Atomic_object.Wait _ | Cc.Atomic_object.Refused _ -> None
          | Cc.Atomic_object.Granted _ ->
            (match branch with
            | `T1_aborts -> Cc.System.abort sys t1
            | `T1_commits -> Cc.System.commit sys t1);
            Cc.System.commit sys t3;
            Some (Ok (Cc.System.history sys))
        with
        | outcome -> outcome
        | exception exn -> Some (Error (Printexc.to_string exn)))))

(* Three-transaction probes for dynamic protocols — the shape that
   matters to data-dependent tables: T2 {e commits between} two grants,
   moving the committed frontier under T1's outstanding intentions,
   then T3 is granted against the new frontier while T1's fate is still
   open.  A synthesized table whose cell verdicts were quantified from
   single frontiers meets composition of three views here; pair probes
   never move the committed state under an open grant. *)
let run_triple_dynamic entry setup p q r ~branch =
  let sys = fresh entry None in
  match run_setup sys setup with
  | None -> None
  | Some _ -> (
    let t1 = Cc.System.begin_txn sys (Activity.update "t1") in
    match Cc.System.invoke sys t1 obj p with
    | Cc.Atomic_object.Wait _ | Cc.Atomic_object.Refused _ -> None
    | Cc.Atomic_object.Granted _ -> (
      let t2 = Cc.System.begin_txn sys (Activity.update "t2") in
      match Cc.System.invoke sys t2 obj q with
      | Cc.Atomic_object.Wait _ | Cc.Atomic_object.Refused _ -> None
      | Cc.Atomic_object.Granted _ -> (
        match
          Cc.System.commit sys t2;
          let t3 = Cc.System.begin_txn sys (Activity.update "t3") in
          match Cc.System.invoke sys t3 obj r with
          | Cc.Atomic_object.Wait _ | Cc.Atomic_object.Refused _ -> None
          | Cc.Atomic_object.Granted _ ->
            (match branch with
            | `T1_aborts -> Cc.System.abort sys t1
            | `T1_commits -> Cc.System.commit sys t1);
            Cc.System.commit sys t3;
            Some (Ok (Cc.System.history sys))
        with
        | outcome -> outcome
        | exception exn -> Some (Error (Printexc.to_string exn)))))

(* Multi-op probe transactions: T1 executes {e two} operations before
   T2 tries one.  T1's second grant is validated against T1's own view
   (committed plus its first intention), not the committed frontier —
   the situation every intentions-based protocol reasons about and no
   single-op pair exercises.  Only grants are judged: a blocked multi
   is conservative, never loose. *)
let run_multi entry (variant : variant) setup p1 p2 q ~completion =
  let sys = fresh entry variant.ts_script in
  match run_setup sys setup with
  | None -> `Setup_blocked
  | Some _ -> (
    let t1 = Cc.System.begin_txn sys (Activity.update "t1") in
    let step1 op k =
      match Cc.System.invoke sys t1 obj op with
      | Cc.Atomic_object.Granted _ -> k ()
      | Cc.Atomic_object.Wait _ | Cc.Atomic_object.Refused _ -> `T1_blocked
      | exception exn -> `Crashed (Printexc.to_string exn)
    in
    step1 p1 @@ fun () ->
    step1 p2 @@ fun () ->
    let a2 =
      if variant.t2_read_only then Activity.read_only "t2"
      else Activity.update "t2"
    in
    let t2 = Cc.System.begin_txn sys a2 in
    match Cc.System.invoke sys t2 obj q with
    | Cc.Atomic_object.Wait _ | Cc.Atomic_object.Refused _ -> `T2_blocked
    | exception exn -> `Crashed (Printexc.to_string exn)
    | Cc.Atomic_object.Granted _ -> (
      match
        match completion with
        | `CC ->
          Cc.System.commit sys t1;
          Cc.System.commit sys t2
        | `CC_rev ->
          Cc.System.commit sys t2;
          Cc.System.commit sys t1
        | `C1A2 ->
          Cc.System.commit sys t1;
          Cc.System.abort sys t2
        | `A1C2 ->
          Cc.System.abort sys t1;
          Cc.System.commit sys t2
      with
      | () -> `Completed (Cc.System.history sys)
      | exception exn -> `Crashed (Printexc.to_string exn)))

let probe_multis entry env setups =
  let d = entry.Catalog.domain in
  let probed = ref 0 in
  let granted = ref 0 in
  let unsound = ref [] in
  List.iter
    (fun variant ->
      List.iter
        (fun setup ->
          let setup_usable = ref true in
          List.iter
            (fun p1 ->
              List.iter
                (fun p2 ->
                  List.iter
                    (fun q ->
                      if
                        !setup_usable
                        && not
                             (variant.t2_read_only
                             && not (d.Domain.read_only q))
                      then begin
                        incr probed;
                        let flag problem =
                          unsound :=
                            {
                              m_setup = setup;
                              m_variant = variant.label;
                              m_p1 = p1;
                              m_p2 = p2;
                              m_q = q;
                              m_problem = problem;
                            }
                            :: !unsound
                        in
                        match run_multi entry variant setup p1 p2 q
                                ~completion:`CC
                        with
                        | `Setup_blocked -> setup_usable := false
                        | `T1_blocked | `T2_blocked -> ()
                        | `Crashed exn ->
                          incr granted;
                          flag
                            (Fmt.str "completion %s raised: %s"
                               (completion_name `CC) exn)
                        | `Completed first_history ->
                          incr granted;
                          let completions =
                            match entry.Catalog.policy with
                            | `Hybrid -> [ `CC_rev; `C1A2; `A1C2 ]
                            | `None_ | `Static -> [ `C1A2; `A1C2 ]
                          in
                          let not_atomic branch =
                            Fmt.str "completion %s is not %s atomic"
                              (completion_name branch)
                              (Catalog.policy_name entry.Catalog.policy)
                          in
                          let failure =
                            if
                              not
                                (check_atomicity entry.Catalog.policy env
                                   first_history)
                            then Some (not_atomic `CC)
                            else
                              List.find_map
                                (fun completion ->
                                  match
                                    run_multi entry variant setup p1 p2 q
                                      ~completion
                                  with
                                  | `Completed h ->
                                    if
                                      check_atomicity entry.Catalog.policy
                                        env h
                                    then None
                                    else Some (not_atomic completion)
                                  | `Crashed exn ->
                                    Some
                                      (Fmt.str "completion %s raised: %s"
                                         (completion_name completion) exn)
                                  | `Setup_blocked | `T1_blocked
                                  | `T2_blocked ->
                                    (* Deterministic replay of an
                                       identical prefix. *)
                                    assert false)
                                completions
                          in
                          Option.iter flag failure
                      end)
                    d.Domain.alphabet)
                d.Domain.alphabet)
            d.Domain.alphabet)
        setups)
    (variants entry.Catalog.policy);
  (!probed, !granted, List.rev !unsound)

let probe_triples ~policy ~run ~r_ok entry env setups =
  let alphabet = entry.Catalog.domain.Domain.alphabet in
  let probed = ref 0 in
  let granted = ref 0 in
  let unsound = ref [] in
  List.iter
    (fun setup ->
      List.iter
        (fun p ->
          List.iter
            (fun q ->
              List.iter
                (fun r ->
                  if r_ok r then begin
                    incr probed;
                    match run setup p q r ~branch:`T1_aborts with
                    | None -> ()
                    | Some first ->
                      incr granted;
                      let flag branch problem =
                        unsound :=
                          { t_setup = setup; t_p = p; t_q = q; t_r = r;
                            branch; problem }
                          :: !unsound
                      in
                      let record branch = function
                        | Ok h ->
                          if not (check_atomicity policy env h) then
                            flag branch
                              (Fmt.str "committed history is not %s atomic"
                                 (Catalog.policy_name policy))
                        | Error exn -> flag branch ("completion raised: " ^ exn)
                      in
                      record "t1-aborts" first;
                      (match run setup p q r ~branch:`T1_commits with
                      | Some second -> record "t1-commits" second
                      | None -> ())
                  end)
                alphabet)
            alphabet)
        alphabet)
    setups;
  (!probed, !granted, List.rev !unsound)

let run ~depth (entry : Catalog.entry) =
  let d = entry.Catalog.domain in
  let setups, enumerated = enumerate_setups d ~depth in
  let env = Spec_env.of_list [ (obj, d.Domain.spec) ] in
  let skipped = ref 0 in
  let pairs = ref [] in
  List.iter
    (fun variant ->
      List.iter
        (fun setup ->
          let setup_usable = ref true in
          List.iter
            (fun p ->
              List.iter
                (fun q ->
                  if !setup_usable then
                    if variant.t2_read_only && not (d.Domain.read_only q) then
                      ()
                    else
                      match probe_pair entry variant env setup p q with
                      | None ->
                        setup_usable := false;
                        incr skipped
                      | Some status ->
                        pairs :=
                          { setup; variant = variant.label; p; q; status }
                          :: !pairs)
                d.Domain.alphabet)
            d.Domain.alphabet)
        setups)
    (variants entry.Catalog.policy);
  let triples_probed, triples_granted, triple_unsound =
    match entry.Catalog.policy with
    | `Static ->
      probe_triples ~policy:`Static ~run:(run_triple entry)
        ~r_ok:(fun _ -> true)
        entry env setups
    | `Hybrid ->
      probe_triples ~policy:`Hybrid ~run:(run_triple_hybrid entry)
        ~r_ok:d.Domain.read_only entry env setups
    | `None_ ->
      probe_triples ~policy:`None_ ~run:(run_triple_dynamic entry)
        ~r_ok:(fun _ -> true)
        entry env setups
  in
  let multis_probed, multis_granted, multi_unsound =
    probe_multis entry env setups
  in
  {
    setups_enumerated = enumerated;
    setups_distinct = List.length setups;
    setups_skipped = !skipped;
    pairs = List.rev !pairs;
    triples_probed;
    triples_granted;
    triple_unsound;
    multis_probed;
    multis_granted;
    multi_unsound;
  }

let pp_ops ppf ops =
  if ops = [] then Fmt.string ppf "(empty)"
  else Fmt.(list ~sep:(any ";") Operation.pp) ppf ops

let pp_pair ppf pr =
  let status =
    match pr.status with
    | Granted_sound -> "granted, sound"
    | Granted_unsound why -> "UNSOUND: " ^ why
    | Blocked_justified -> "blocked, justified"
    | Blocked_loose why -> "loose: " ^ why
  in
  Fmt.pf ppf "@[<h>[%a] %a || %a (%s): %s@]" pp_ops pr.setup Operation.pp pr.p
    Operation.pp pr.q pr.variant status

let pp_triple ppf t =
  Fmt.pf ppf "@[<h>[%a] t1:%a t2:%a(commit) t3:%a, %s: %s@]" pp_ops
    t.t_setup Operation.pp t.t_p Operation.pp t.t_q Operation.pp t.t_r
    t.branch t.problem

let pp_multi ppf m =
  Fmt.pf ppf "@[<h>[%a] t1:%a;%a || t2:%a (%s): %s@]" pp_ops m.m_setup
    Operation.pp m.m_p1 Operation.pp m.m_p2 Operation.pp m.m_q m.m_variant
    m.m_problem
