open Weihl_event
module Cc = Weihl_cc
module Adt = Weihl_adt

type outcome = {
  name : string;
  kind : string;
  description : string;
  detected : bool;
  evidence : string;
}

(* Claim, on top of [base], that each listed pair commutes (in both
   orders) — the way a hand table rots: an entry flipped to [true]. *)
let claim_commutes pairs base p q =
  List.exists
    (fun (a, b) ->
      (Operation.equal p a && Operation.equal q b)
      || (Operation.equal p b && Operation.equal q a))
    pairs
  || base p q

let table_mutations =
  [
    ( "table-account-withdraws-commute",
      "account",
      "withdraw(3)/withdraw(6) flipped to commute",
      claim_commutes
        [ (Adt.Bank_account.withdraw 3, Adt.Bank_account.withdraw 6) ]
        Adt.Bank_account.commutes );
    ( "table-intset-size-blind",
      "intset",
      "size/insert(1) flipped to commute",
      claim_commutes
        [ (Adt.Intset.size, Adt.Intset.insert 1) ]
        Adt.Intset.commutes );
    ( "table-queue-enqueues-commute",
      "queue",
      "enqueue(1)/enqueue(2) flipped to commute",
      claim_commutes
        [ (Adt.Fifo_queue.enqueue 1, Adt.Fifo_queue.enqueue 2) ]
        Adt.Fifo_queue.commutes );
    ( "table-kv-same-key-puts-commute",
      "kv",
      "put(1,10)/put(1,20) flipped to commute",
      claim_commutes
        [ (Adt.Kv_map.put 1 10, Adt.Kv_map.put 1 20) ]
        Adt.Kv_map.commutes );
    ( "table-semiqueue-deqs-commute",
      "semiqueue",
      "deq/deq flipped to commute (both may be granted the same item)",
      claim_commutes [ (Adt.Semiqueue.deq, Adt.Semiqueue.deq) ]
        Adt.Semiqueue.commutes );
  ]

(* Protocol-level corruptions: real objects built with corrupted
   conflict rules, certified through the same probe harness as the
   catalogue. *)
let protocol_mutations : (string * string * Catalog.entry) list =
  let account = Domain.find_exn "account" in
  let intset = Domain.find_exn "intset" in
  let bad_account_conflict p q =
    not
      (claim_commutes
         [ (Adt.Bank_account.withdraw 3, Adt.Bank_account.withdraw 6) ]
         Adt.Bank_account.commutes p q)
  in
  [
    ( "oplock-account-withdraws-compatible",
      "commutativity locking driven by the corrupted account table",
      {
        Catalog.name = "mut-oplock-account";
        policy = `None_;
        domain = account;
        make_object =
          (fun log id ->
            Cc.Op_locking.make log id Adt.Bank_account.spec
              ~conflict:bad_account_conflict);
      } );
    ( "oplock-no-conflicts",
      "locking with an empty conflict relation (everything compatible)",
      {
        Catalog.name = "mut-oplock-free";
        policy = `None_;
        domain = account;
        make_object =
          (fun log id ->
            Cc.Op_locking.make log id Adt.Bank_account.spec
              ~conflict:(fun _ _ -> false));
      } );
    ( "oplock-set-member-blind-to-insert",
      "set locking that lets member(1) run beside insert(1)",
      {
        Catalog.name = "mut-oplock-set";
        policy = `None_;
        domain = intset;
        make_object =
          (fun log id ->
            Cc.Op_locking.make log id Adt.Intset.spec ~conflict:(fun p q ->
                not
                  (claim_commutes
                     [ (Adt.Intset.member 1, Adt.Intset.insert 1) ]
                     Adt.Intset.commutes p q)));
      } );
    ( "hybrid-account-withdraws-compatible",
      "hybrid updates locked by the corrupted account table",
      {
        Catalog.name = "mut-hybrid-account";
        policy = `Hybrid;
        domain = account;
        make_object =
          (fun log id ->
            Cc.Hybrid.make log id Adt.Bank_account.spec
              ~conflict:bad_account_conflict ~read_only_op:(fun op ->
                Adt.Bank_account.classify op = Adt.Adt_sig.Read));
      } );
    ( "hybrid-forgets-contended-commit",
      "hybrid commit drops its version archive when other intentions are \
       outstanding — only a later reader after a contended commit can tell",
      {
        Catalog.name = "mut-hybrid-forget";
        policy = `Hybrid;
        domain = account;
        make_object =
          (fun log id ->
            Cc.Hybrid.make ~unsafe_forget_contended_commit:true log id
              Adt.Bank_account.spec
              ~conflict:(fun p q -> not (Adt.Bank_account.commutes p q))
              ~read_only_op:(fun op ->
                Adt.Bank_account.classify op = Adt.Adt_sig.Read));
      } );
    ( "multiversion-unstable-grant",
      "multiversion grant guard without the committed+own validation (the \
       PR 3 static-atomicity bug)",
      {
        Catalog.name = "mut-multiversion";
        policy = `Static;
        domain = intset;
        make_object =
          (fun log id ->
            Cc.Multiversion.make ~validate_stable:false log id Adt.Intset.spec);
      } );
    ( "derived-account-withdraws-commute",
      "synthesized account table with the derived \
       withdraw(3)ok/withdraw(6)ok conflict cell flipped to commute",
      (let synthesis = Synthesize.of_domain ~depth:3 account in
       let corrupted =
         Weihl_theory.Synthesize.force_commute
           (Synthesize.table synthesis)
           (Adt.Bank_account.withdraw 3, Value.ok)
           (Adt.Bank_account.withdraw 6, Value.ok)
       in
       {
         Catalog.name = "mut-derived-account";
         policy = `None_;
         domain = account;
         make_object =
           (fun log id ->
             Synthesize.make_object ~table:corrupted synthesis log id);
       }) );
  ]

let self_test ~depth =
  let table_outcomes =
    List.map
      (fun (name, adt, description, table) ->
        let cert = Table_cert.certify ~table ~depth (Domain.find_exn adt) in
        match Table_cert.unsound cert with
        | e :: _ ->
          {
            name;
            kind = "table";
            description;
            detected = true;
            evidence = Fmt.str "%a" Table_cert.pp_entry e;
          }
        | [] ->
          { name; kind = "table"; description; detected = false; evidence = "" })
      table_mutations
  in
  let protocol_outcomes =
    List.map
      (fun (name, description, entry) ->
        let cert = Certify.certify_protocol ~depth entry in
        match cert.Certify.unsound with
        | e :: _ ->
          {
            name;
            kind = "protocol";
            description;
            detected = true;
            evidence = e;
          }
        | [] ->
          {
            name;
            kind = "protocol";
            description;
            detected = false;
            evidence = "";
          })
      protocol_mutations
  in
  table_outcomes @ protocol_outcomes

let all_detected outcomes = List.for_all (fun o -> o.detected) outcomes

let pp_outcome ppf o =
  Fmt.pf ppf "@[<v2>%-40s [%s] %s: %s%a@]" o.name o.kind o.description
    (if o.detected then "detected" else "MISSED")
    Fmt.(option (any "@," ++ string))
    (if o.evidence = "" then None else Some o.evidence)
