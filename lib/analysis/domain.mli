(** Bounded probe domains: one finite operation alphabet per catalogue
    ADT, rich enough to exercise every conflict class of its
    hand-written table on small argument values.

    Everything the certifier derives is quantified over these alphabets
    and over serial setups built from them, so the alphabets fix the
    soundness/completeness bound of the whole analysis: a table or
    grant-rule error only shows up if some pair of alphabet operations
    witnesses it.  The alphabets deliberately mirror the ones
    [test_commutativity.ml] has always used, extended to every ADT. *)

open Weihl_event

type t = {
  name : string;  (** the registry name, e.g. ["intset"] *)
  spec : Weihl_spec.Seq_spec.t;
  alphabet : Operation.t list;
  commutes : Operation.t -> Operation.t -> bool;
      (** the hand-written table under certification *)
  read_only : Operation.t -> bool;
      (** from the ADT's read/write classification *)
}

val of_adt : string -> (module Weihl_adt.Adt_sig.S) -> Operation.t list -> t

val all : t list
(** One domain per registry ADT, same names as {!Weihl_adt.Adt_registry.all}. *)

val find : string -> t option

val find_exn : string -> t
(** @raise Invalid_argument on an unknown name. *)
