open Weihl_event
module Cc = Weihl_cc
module Json = Weihl_obs.Json
module T = Weihl_theory.Synthesize
module Commutativity = Weihl_theory.Commutativity

type t = { domain : Domain.t; depth : int; table : T.t }

let domain t = t.domain
let depth t = t.depth
let table t = t.table

(* The budget headroom over the lint depth: enough for the bounded
   alphabets that do stabilize (intset, register, kv, counter close
   within a handful of levels) without letting the unbounded ones
   (account balances, queue contents) blow the exploration up. *)
let budget_for depth = depth + 3

let synthesize_domain ~depth (d : Domain.t) =
  T.synthesize d.Domain.spec ~alphabet:d.Domain.alphabet ~depth
    ~budget:(budget_for depth)

let cache : (string * int, t) Hashtbl.t = Hashtbl.create 16
let cache_lock = Mutex.create ()

let of_domain ?(depth = 3) (d : Domain.t) =
  let key = (d.Domain.name, depth) in
  match
    Mutex.protect cache_lock (fun () -> Hashtbl.find_opt cache key)
  with
  | Some t -> t
  | None ->
    let t = { domain = d; depth; table = synthesize_domain ~depth d } in
    Mutex.protect cache_lock (fun () ->
        match Hashtbl.find_opt cache key with
        | Some t -> t
        | None ->
          Hashtbl.add cache key t;
          t)

let all ?depth () = List.map (of_domain ?depth) Domain.all

let conflict_of (d : Domain.t) (table : T.t) kp kq =
  match T.conflict table kp kq with
  | Some b -> b
  | None ->
    (* Off-alphabet operation: no cell and no op-level projection to
       consult.  Fall back to read/write classification — exactly the
       conservative relation [Op_locking.rw] uses, so the synthesized
       protocol degrades to rw locking off its alphabet instead of
       guessing. *)
    not (d.Domain.read_only (fst kp) && d.Domain.read_only (fst kq))

let make_object ?table t log id =
  let tbl = Option.value table ~default:t.table in
  Cc.Derived_locking.make log id t.domain.Domain.spec
    ~conflict:(conflict_of t.domain tbl)

let protocol_name t = "derived_" ^ t.domain.Domain.name

let stats_to_json (s : Commutativity.stats) =
  Json.Obj
    [
      ("enumerated", Json.Num (float_of_int s.Commutativity.enumerated));
      ("distinct", Json.Num (float_of_int s.Commutativity.distinct));
      ("truncated", Json.Bool s.Commutativity.truncated);
      ("depth_used", Json.Num (float_of_int s.Commutativity.depth_used));
      ("stabilized", Json.Bool s.Commutativity.stabilized);
    ]

let to_json t =
  let commute, conflicts, unknown = T.counts t.table in
  Json.Obj
    [
      ("adt", Json.Str t.domain.Domain.name);
      ("protocol", Json.Str (protocol_name t));
      ("depth", Json.Num (float_of_int t.depth));
      ("budget", Json.Num (float_of_int (budget_for t.depth)));
      ("exploration", stats_to_json (T.stats t.table));
      ( "classes",
        Json.List
          (List.map
             (fun (op, results) ->
               Json.Obj
                 [
                   ("op", Json.Str (Fmt.str "%a" Operation.pp op));
                   ( "results",
                     Json.List
                       (List.map
                          (fun r -> Json.Str (Fmt.str "%a" Value.pp r))
                          results) );
                 ])
             (T.classes t.table)) );
      ( "cells",
        Json.Obj
          [
            ("commute", Json.Num (float_of_int commute));
            ("conflict", Json.Num (float_of_int conflicts));
            ("unknown", Json.Num (float_of_int unknown));
          ] );
      ( "refinements",
        Json.List
          (List.map
             (fun (p, q) ->
               Json.Str (Fmt.str "%a/%a" Operation.pp p Operation.pp q))
             (T.refinements t.table)) );
      ( "matrix",
        Json.List
          (List.map
             (fun (kp, kq, v) ->
               Json.Str
                 (Fmt.str "%a | %a : %a" T.pp_key kp T.pp_key kq
                    Commutativity.pp_verdict v))
             (T.cells t.table)) );
    ]

let pp ppf t = T.pp ppf t.table
let pp_matrix ppf t = T.pp_matrix ppf t.table
