(** Per-domain protocol synthesis: the bridge from the certifier's
    derived relation to a runnable catalog protocol.

    For each probe {!Domain}, {!of_domain} compiles the result-aware
    conflict matrix ([Weihl_theory.Synthesize]) over the domain's
    bounded alphabet — memoized per (domain, depth) so lint, probes,
    the bench and the CLI all share one synthesis — and
    {!make_object} wraps it into a [Weihl_cc.Derived_locking] object.
    {!Catalog} registers one such protocol per ADT under the name
    [derived_<adt>], which puts the synthesized family through the
    identical pair/triple/multi-op/cross-shard certification as the
    hand-written protocols.

    Runtime operations outside the synthesis alphabet fall back to the
    table's op-level projection, and past that to read/write
    classification — conservative at every step, so off-alphabet
    traffic degrades to rw locking rather than guessing. *)

open Weihl_event

type t

val budget_for : int -> int
(** The growth budget used for a synthesis at a given depth
    ([depth + 3]) — exported so the lint report can state the budget a
    non-stabilizing exploration exhausted. *)

val of_domain : ?depth:int -> Domain.t -> t
(** Synthesize (or fetch the memoized) table for the domain: explored
    to [depth] (default 3) generator levels, budgeted up to
    {!budget_for}[ depth] until the frontier count stabilizes. *)

val all : ?depth:int -> unit -> t list
(** One synthesis per registry domain, in {!Domain.all} order. *)

val domain : t -> Domain.t
val depth : t -> int
val table : t -> Weihl_theory.Synthesize.t

val protocol_name : t -> string
(** ["derived_<adt>"] — the catalog name of the synthesized protocol. *)

val conflict_of :
  Domain.t ->
  Weihl_theory.Synthesize.t ->
  Operation.t * Value.t ->
  Operation.t * Value.t ->
  bool
(** The complete runtime conflict relation: table cell, then op-level
    projection, then read/write fallback for off-alphabet operations. *)

val make_object :
  ?table:Weihl_theory.Synthesize.t ->
  t ->
  Weihl_cc.Event_log.t ->
  Weihl_event.Object_id.t ->
  Weihl_cc.Atomic_object.t
(** The synthesized protocol as an atomic object.  [table] overrides
    the compiled matrix — the mutation self-test passes a corrupted
    copy through here. *)

val stats_to_json : Weihl_theory.Commutativity.stats -> Weihl_obs.Json.t
(** The exploration record, including [depth_used] and [stabilized] —
    shared with the lint report's budget mode. *)

val to_json : t -> Weihl_obs.Json.t
(** The full dump [weihl synth] emits: exploration stats, result
    classes, cell counts, op-level refinements, and the matrix. *)

val pp : Format.formatter -> t -> unit
val pp_matrix : Format.formatter -> t -> unit
