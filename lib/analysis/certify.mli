(** The lint pass itself: per-ADT table certificates plus per-protocol
    behavioural certificates, with a machine-readable JSON rendering.

    A protocol certificate aggregates the {!Probe} results:

    - [unsound] — pairs granted concurrently whose completion left the
      protocol's atomicity class, plus static/hybrid triple-probe and
      cross-shard probe violations; any entry here is a bug in the
      protocol's conflict rules;
    - [loose] — pairs blocked though some permissible result would have
      kept every completion in the class;
    - [looseness] — [loose / (granted_sound + loose)]: of everything
      that could soundly run concurrently, the fraction the protocol
      blocks.  0 is optimal; the paper's data-dependent protocols
      exist precisely to drive this toward 0. *)

type protocol_cert = {
  protocol : string;
  adt : string;
  policy : string;  (** atomicity class: dynamic / static / hybrid *)
  depth : int;
  probe : Probe.t;
  cross : Xprobe.t;
      (** cross-shard probes: the same object on two shards, driven
          through opposite-order patterns and committed via 2PC *)
  pairs_probed : int;
  granted_sound : int;
  blocked_justified : int;
  unsound : string list;
  loose : string list;
  looseness : float;
}

type report = {
  depth : int;
  tables : Table_cert.t list;
  protocols : protocol_cert list;
}

val certify_protocol : depth:int -> Catalog.entry -> protocol_cert

val run : ?protocol:string -> depth:int -> unit -> report
(** The full catalogue, or — with [?protocol] — one catalogue protocol
    (and its ADT's table), or one ADT table alone when the name only
    matches a domain.
    @raise Invalid_argument on an unknown name. *)

val unsound_total : report -> int
(** Unsound table entries plus unsound protocol findings; lint exits
    non-zero iff positive. *)

val to_json : report -> Weihl_obs.Json.t
val pp : ?verbose:bool -> Format.formatter -> report -> unit
