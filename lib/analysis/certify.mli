(** The lint pass itself: per-ADT table certificates plus per-protocol
    behavioural certificates, with a machine-readable JSON rendering.

    A protocol certificate aggregates the {!Probe} results:

    - [unsound] — pairs granted concurrently whose completion left the
      protocol's atomicity class, plus static/hybrid triple-probe,
      multi-op probe, cross-shard and wide (three-shard, crash-injected)
      probe violations; any entry here is a bug in the protocol's
      conflict rules;
    - [loose] — pairs blocked though some permissible result would have
      kept every completion in the class;
    - [looseness] — [loose / (granted_sound + loose)]: of everything
      that could soundly run concurrently, the fraction the protocol
      blocks.  0 is optimal; the paper's data-dependent protocols
      exist precisely to drive this toward 0.

    Synthesized [derived_*] protocols additionally carry the
    {!Synthesize} record behind the probed object, and the report
    collects loud [warnings] whenever an exploration backing a table
    certificate or a synthesis was truncated or did not stabilize —
    the silent-truncation failure mode the budget mode exists to
    expose. *)

type protocol_cert = {
  protocol : string;
  adt : string;
  policy : string;  (** atomicity class: dynamic / static / hybrid *)
  depth : int;
  probe : Probe.t;
  cross : Xprobe.t;
      (** cross-shard probes: the same object on two shards, driven
          through opposite-order patterns and committed via 2PC, plus
          the three-shard wide pattern with a mid-2PC participant
          crash *)
  pairs_probed : int;
  granted_sound : int;
  blocked_justified : int;
  unsound : string list;
  loose : string list;
  looseness : float;
  synthesis : Synthesize.t option;
      (** for [derived_*] protocols: the synthesis that compiled the
          probed lock table *)
}

type report = {
  depth : int;
  budget : int option;  (** the [--budget] the run was given, if any *)
  tables : Table_cert.t list;
  protocols : protocol_cert list;
  warnings : string list;
      (** explorations that were truncated or did not stabilize — each
          certificate above such a warning holds only to its explored
          bound *)
}

val certify_protocol : depth:int -> Catalog.entry -> protocol_cert

val run : ?protocol:string -> ?budget:int -> depth:int -> unit -> report
(** The full catalogue, or — with [?protocol] — one catalogue protocol
    (and its ADT's table), or one ADT table alone when the name only
    matches a domain.  [budget] grows every table-certificate
    exploration past [depth] until the frontier count stabilizes (or
    the budget runs out — reported in the stats and [warnings]).
    @raise Invalid_argument on an unknown name. *)

val unsound_total : report -> int
(** Unsound table entries plus unsound protocol findings; lint exits
    non-zero iff positive. *)

val to_json : report -> Weihl_obs.Json.t
val pp : ?verbose:bool -> Format.formatter -> report -> unit
