open Weihl_event
module Commutativity = Weihl_theory.Commutativity

type entry = {
  p : Operation.t;
  q : Operation.t;
  hand : bool;
  derived : Commutativity.verdict;
}

type t = {
  adt : string;
  depth : int;
  stats : Commutativity.stats;
  entries : entry list;
}

let unsound t =
  List.filter
    (fun e ->
      e.hand && match e.derived with Commutativity.Conflict _ -> true | _ -> false)
    t.entries

let loose t =
  List.filter
    (fun e ->
      (not e.hand)
      && match e.derived with Commutativity.Commute -> true | _ -> false)
    t.entries

let unknown t =
  List.filter
    (fun e ->
      match e.derived with Commutativity.Unknown _ -> true | _ -> false)
    t.entries

let certify ?table ?budget ~depth (d : Domain.t) =
  let hand = Option.value table ~default:d.Domain.commutes in
  (* The stats come from the same (memoized) exploration the pair
     verdicts quantify over: dedup at probe_depth + 2 = 4, grown under
     the budget when one is given. *)
  let _, stats =
    Commutativity.reachable_frontiers d.Domain.spec ~gen_ops:d.Domain.alphabet
      ~depth ~probe_depth:4 ?grow_until:budget
  in
  let entries =
    List.concat_map
      (fun p ->
        List.map
          (fun q ->
            {
              p;
              q;
              hand = hand p q;
              derived =
                Commutativity.commute_on_reachable d.Domain.spec
                  ~gen_ops:d.Domain.alphabet ~state_depth:depth
                  ?grow_until:budget p q;
            })
          d.Domain.alphabet)
      d.Domain.alphabet
  in
  { adt = d.Domain.name; depth; stats; entries }

let pp_entry ppf e =
  Fmt.pf ppf "@[<h>%a / %a: table says %s, derived %a@]" Operation.pp e.p
    Operation.pp e.q
    (if e.hand then "commute" else "conflict")
    Commutativity.pp_verdict e.derived

let pp ppf t =
  Fmt.pf ppf "@[<v>table %-14s %d entries, %a: %d unsound, %d loose, %d unknown@]"
    t.adt
    (List.length t.entries)
    Commutativity.pp_stats t.stats
    (List.length (unsound t))
    (List.length (loose t))
    (List.length (unknown t))
