open Weihl_event
module Cc = Weihl_cc
module Group = Weihl_shard.Group
module Gtxn = Weihl_shard.Gtxn

type status =
  | Granted_sound
  | Granted_unsound of string
  | Blocked
      (** some invoke waited or was refused mid-pattern — cross-shard
          blocking is conservative, never flagged *)

type xpair = {
  x_setup : Operation.t list;
  x_variant : string;
  x_p : Operation.t;
  x_q : Operation.t;
  x_status : status;
}

type t = {
  probed : int;
  granted : int;
  blocked : int;
  unsound : xpair list;
}

(* The router hashes object ids to shards; walk candidate names until
   one lands on each shard of a two-shard group. *)
let pick_ids group =
  let rec go i a b =
    match (a, b) with
    | Some a, Some b -> (a, b)
    | _ ->
      let id = Object_id.v (Fmt.str "x%d" i) in
      (match Group.shard_of group id with
      | 0 when a = None -> go (i + 1) (Some id) b
      | 1 when b = None -> go (i + 1) a (Some id)
      | _ -> go (i + 1) a b)
  in
  go 0 None None

let fresh (entry : Catalog.entry) =
  let group = Group.create ~policy:entry.Catalog.policy ~seed:0 ~shards:2 () in
  let a, b = pick_ids group in
  Group.add_object group a entry.Catalog.make_object;
  Group.add_object group b entry.Catalog.make_object;
  (group, a, b)

(* Drive the committed setup against both objects (so both shards start
   at the same frontier); [None] when the protocol does not grant some
   setup operation serially. *)
let run_setup group a b ops =
  let g = Group.begin_txn group (Activity.update "setup") in
  let rec go = function
    | [] -> (
      match Group.commit group g with
      | (_ : Group.commit_outcome) -> Some ()
      | exception _ -> None)
    | op :: rest -> (
      match (Group.invoke group g a op, Group.invoke group g b op) with
      | Group.Granted _, Group.Granted _ -> go rest
      | _ -> None)
  in
  go ops

type completion = [ `CC | `CC_rev | `C1A2 | `A1C2 ]

let completion_name = function
  | `CC -> "both-commit"
  | `CC_rev -> "both-commit-reversed"
  | `C1A2 -> "t2-aborts"
  | `A1C2 -> "t1-aborts"

(* The cross-shard pattern no single shard sees whole: T1 touches
   object [a] (shard 0) then [b] (shard 1); T2 touches them in the
   opposite order.  Each shard observes only one interleaved half; the
   global checks below are the paper's global-atomicity conditions. *)
let run_pattern entry ~t2_read_only setup p q ~(completion : completion) =
  let group, a, b = fresh entry in
  match run_setup group a b setup with
  | None -> `Setup_blocked
  | Some () -> (
    let t1 = Group.begin_txn group (Activity.update "t1") in
    let a2 =
      if t2_read_only then Activity.read_only "t2" else Activity.update "t2"
    in
    let t2 = Group.begin_txn group a2 in
    let step g obj op k =
      match Group.invoke group g obj op with
      | Group.Granted _ -> k ()
      | Group.Wait _ | Group.Refused _ -> `Blocked
      | exception exn -> `Crashed (Printexc.to_string exn)
    in
    step t1 a p @@ fun () ->
    step t2 b q @@ fun () ->
    step t1 b p @@ fun () ->
    step t2 a q @@ fun () ->
    match
      (match completion with
      | `CC ->
        ignore (Group.commit group t1);
        ignore (Group.commit group t2)
      | `CC_rev ->
        ignore (Group.commit group t2);
        ignore (Group.commit group t1)
      | `C1A2 ->
        ignore (Group.commit group t1);
        Group.abort group t2
      | `A1C2 ->
        Group.abort group t1;
        ignore (Group.commit group t2))
    with
    | () -> `Completed (group, a, b, t1, t2)
    | exception exn -> `Crashed (Printexc.to_string exn))

(* Global atomicity over the completed pattern:

   - atomic commitment — each global transaction is committed on both
     shards or neither (and its final status matches);
   - timestamp agreement — a committed transaction's shards answer the
     same (2PC-agreed) timestamp;
   - merged replay — the committed projection, in the group's
     serialization order, replays against one combined system holding
     both objects. *)
let check_global (entry : Catalog.entry) group a b gtxns =
  let h0 = Cc.System.history (Group.system group 0) in
  let h1 = Cc.System.history (Group.system group 1) in
  let commitment =
    List.find_map
      (fun g ->
        let act = Gtxn.activity g in
        let c0 = Activity.Set.mem act (History.committed h0) in
        let c1 = Activity.Set.mem act (History.committed h1) in
        let wants = Gtxn.status g = Gtxn.Committed in
        if c0 <> c1 then
          Some
            (Fmt.str "%a committed on shard %d but not shard %d" Activity.pp
               act
               (if c0 then 0 else 1)
               (if c0 then 1 else 0))
        else if c0 <> wants then
          Some
            (Fmt.str "%a is %s but its shards say %s" Activity.pp act
               (if wants then "committed" else "not committed")
               (if c0 then "committed" else "not committed"))
        else None)
      gtxns
  in
  match commitment with
  | Some msg -> Some msg
  | None -> (
    let ts_disagreement =
      List.find_map
        (fun g ->
          let act = Gtxn.activity g in
          if not (Activity.Set.mem act (History.committed h0)) then None
          else
            match (History.timestamp_of h0 act, History.timestamp_of h1 act)
            with
            | Some x, Some y when Timestamp.compare x y <> 0 ->
              Some
                (Fmt.str "%a committed with ts %a at shard 0 but %a at shard 1"
                   Activity.pp act Timestamp.pp x Timestamp.pp y)
            | Some _, None | None, Some _ ->
              Some
                (Fmt.str "%a has a timestamp on only one shard" Activity.pp
                   act)
            | _ -> None)
        gtxns
    in
    match ts_disagreement with
    | Some msg -> Some msg
    | None -> (
      let sys = Cc.System.create ~policy:entry.Catalog.policy () in
      List.iter
        (fun id ->
          Cc.System.add_object sys
            (entry.Catalog.make_object (Cc.System.log sys) id))
        [ a; b ];
      match Cc.Recovery.replay_txns sys (Group.committed_projection group) with
      | Ok _ -> None
      | Error f -> Some (Fmt.str "merged replay: %a" Cc.Recovery.pp_failure f)))

let probe_pair entry ~t2_read_only setup p q =
  let completions : completion list =
    if t2_read_only then [ `CC; `CC_rev; `A1C2 ]
    else [ `CC; `CC_rev; `C1A2; `A1C2 ]
  in
  let rec go = function
    | [] -> Some Granted_sound
    | completion :: rest -> (
      match run_pattern entry ~t2_read_only setup p q ~completion with
      | `Setup_blocked -> None
      | `Blocked -> Some Blocked
      | `Crashed exn ->
        Some
          (Granted_unsound
             (Fmt.str "completion %s raised: %s" (completion_name completion)
                exn))
      | `Completed (group, a, b, t1, t2) -> (
        match check_global entry group a b [ t1; t2 ] with
        | Some why ->
          Some
            (Granted_unsound
               (Fmt.str "completion %s: %s" (completion_name completion) why))
        | None -> go rest))
  in
  go completions

let run (entry : Catalog.entry) ~setups =
  let d = entry.Catalog.domain in
  let probed = ref 0 in
  let granted = ref 0 in
  let blocked = ref 0 in
  let unsound = ref [] in
  let variants =
    match entry.Catalog.policy with
    | `Hybrid ->
      [ ("update-update", false, fun _ -> true);
        ("update-readonly", true, d.Domain.read_only) ]
    | `None_ | `Static -> [ ("update-update", false, fun _ -> true) ]
  in
  List.iter
    (fun (label, t2_read_only, q_ok) ->
      List.iter
        (fun setup ->
          let setup_usable = ref true in
          List.iter
            (fun p ->
              List.iter
                (fun q ->
                  if !setup_usable && q_ok q then begin
                    match probe_pair entry ~t2_read_only setup p q with
                    | None -> setup_usable := false
                    | Some status ->
                      incr probed;
                      (match status with
                      | Granted_sound -> incr granted
                      | Blocked -> incr blocked
                      | Granted_unsound _ ->
                        unsound :=
                          {
                            x_setup = setup;
                            x_variant = label;
                            x_p = p;
                            x_q = q;
                            x_status = status;
                          }
                          :: !unsound)
                  end)
                d.Domain.alphabet)
            d.Domain.alphabet)
        setups)
    variants;
  {
    probed = !probed;
    granted = !granted;
    blocked = !blocked;
    unsound = List.rev !unsound;
  }

let pp_ops ppf ops =
  if ops = [] then Fmt.string ppf "(empty)"
  else Fmt.(list ~sep:(any ";") Operation.pp) ppf ops

let pp_xpair ppf x =
  let status =
    match x.x_status with
    | Granted_sound -> "granted, sound"
    | Blocked -> "blocked"
    | Granted_unsound why -> "UNSOUND: " ^ why
  in
  Fmt.pf ppf "@[<h>cross-shard [%a] t1:%a@@a,b t2:%a@@b,a (%s): %s@]" pp_ops
    x.x_setup Operation.pp x.x_p Operation.pp x.x_q x.x_variant status
