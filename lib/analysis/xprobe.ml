open Weihl_event
module Cc = Weihl_cc
module Group = Weihl_shard.Group
module Gtxn = Weihl_shard.Gtxn

type status =
  | Granted_sound
  | Granted_unsound of string
  | Blocked
      (** some invoke waited or was refused mid-pattern — cross-shard
          blocking is conservative, never flagged *)

type xpair = {
  x_setup : Operation.t list;
  x_variant : string;
  x_p : Operation.t;
  x_q : Operation.t;
  x_status : status;
}

type wide = {
  w_setup : Operation.t list;
  w_p : Operation.t;
  w_q : Operation.t;
  w_mode : string;
  w_problem : string;
}

type t = {
  probed : int;
  granted : int;
  blocked : int;
  unsound : xpair list;
  wide_probed : int;
  wide_granted : int;
  wide_blocked : int;
  wide_unsound : wide list;
}

(* The router hashes object ids to shards; walk candidate names until
   one lands on each shard of the group. *)
let pick_ids_n group n =
  let slots = Array.make n None in
  let rec go i =
    if Array.for_all Option.is_some slots then
      Array.to_list (Array.map Option.get slots)
    else begin
      let id = Object_id.v (Fmt.str "x%d" i) in
      let s = Group.shard_of group id in
      if s < n && slots.(s) = None then slots.(s) <- Some id;
      go (i + 1)
    end
  in
  go 0

let pick_ids group =
  match pick_ids_n group 2 with
  | [ a; b ] -> (a, b)
  | _ -> assert false

let fresh (entry : Catalog.entry) =
  let group = Group.create ~policy:entry.Catalog.policy ~seed:0 ~shards:2 () in
  let a, b = pick_ids group in
  Group.add_object group a entry.Catalog.make_object;
  Group.add_object group b entry.Catalog.make_object;
  (group, a, b)

(* Drive the committed setup against both objects (so both shards start
   at the same frontier); [None] when the protocol does not grant some
   setup operation serially. *)
(* Activity names must survive the WAL's notation round-trip, which
   reconstructs the update/read-only kind from the paper's first-letter
   convention (r/s/t are read-only) — the wide crash probes replay
   these very transactions through recovery.  Hence [init]/[u1]/[u2],
   not [setup]/[t1]/[t2]. *)
let run_setup group a b ops =
  let g = Group.begin_txn group (Activity.update "init") in
  let rec go = function
    | [] -> (
      match Group.commit group g with
      | (_ : Group.commit_outcome) -> Some ()
      | exception _ -> None)
    | op :: rest -> (
      match (Group.invoke group g a op, Group.invoke group g b op) with
      | Group.Granted _, Group.Granted _ -> go rest
      | _ -> None)
  in
  go ops

type completion = [ `CC | `CC_rev | `C1A2 | `A1C2 ]

let completion_name = function
  | `CC -> "both-commit"
  | `CC_rev -> "both-commit-reversed"
  | `C1A2 -> "t2-aborts"
  | `A1C2 -> "t1-aborts"

(* The cross-shard pattern no single shard sees whole: T1 touches
   object [a] (shard 0) then [b] (shard 1); T2 touches them in the
   opposite order.  Each shard observes only one interleaved half; the
   global checks below are the paper's global-atomicity conditions. *)
let run_pattern entry ~t2_read_only setup p q ~(completion : completion) =
  let group, a, b = fresh entry in
  match run_setup group a b setup with
  | None -> `Setup_blocked
  | Some () -> (
    let t1 = Group.begin_txn group (Activity.update "u1") in
    let a2 =
      if t2_read_only then Activity.read_only "r2" else Activity.update "u2"
    in
    let t2 = Group.begin_txn group a2 in
    let step g obj op k =
      match Group.invoke group g obj op with
      | Group.Granted _ -> k ()
      | Group.Wait _ | Group.Refused _ -> `Blocked
      | exception exn -> `Crashed (Printexc.to_string exn)
    in
    step t1 a p @@ fun () ->
    step t2 b q @@ fun () ->
    step t1 b p @@ fun () ->
    step t2 a q @@ fun () ->
    match
      (match completion with
      | `CC ->
        ignore (Group.commit group t1);
        ignore (Group.commit group t2)
      | `CC_rev ->
        ignore (Group.commit group t2);
        ignore (Group.commit group t1)
      | `C1A2 ->
        ignore (Group.commit group t1);
        Group.abort group t2
      | `A1C2 ->
        Group.abort group t1;
        ignore (Group.commit group t2))
    with
    | () -> `Completed (group, a, b, t1, t2)
    | exception exn -> `Crashed (Printexc.to_string exn))

(* Global atomicity over the completed pattern:

   - atomic commitment — each global transaction is committed on both
     shards or neither (and its final status matches);
   - timestamp agreement — a committed transaction's shards answer the
     same (2PC-agreed) timestamp;
   - merged replay — the committed projection, in the group's
     serialization order, replays against one combined system holding
     both objects. *)
let check_global_n (entry : Catalog.entry) group ids gtxns =
  let shards = List.init (Group.shard_count group) Fun.id in
  let histories =
    List.map (fun s -> (s, Cc.System.history (Group.system group s))) shards
  in
  let commitment =
    List.find_map
      (fun g ->
        let act = Gtxn.activity g in
        let where =
          List.map
            (fun (s, h) -> (s, Activity.Set.mem act (History.committed h)))
            histories
        in
        let wants = Gtxn.status g = Gtxn.Committed in
        match
          ( List.find_opt (fun (_, c) -> c) where,
            List.find_opt (fun (_, c) -> not c) where )
        with
        | Some (sc, _), Some (sn, _) ->
          Some
            (Fmt.str "%a committed on shard %d but not shard %d" Activity.pp
               act sc sn)
        | Some _, None when not wants ->
          Some
            (Fmt.str "%a is not committed but its shards say committed"
               Activity.pp act)
        | None, Some _ when wants ->
          Some
            (Fmt.str "%a is committed but its shards say not committed"
               Activity.pp act)
        | _ -> None)
      gtxns
  in
  match commitment with
  | Some msg -> Some msg
  | None -> (
    let ts_disagreement =
      List.find_map
        (fun g ->
          let act = Gtxn.activity g in
          let stamps =
            List.filter_map
              (fun (s, h) ->
                if Activity.Set.mem act (History.committed h) then
                  Some (s, History.timestamp_of h act)
                else None)
              histories
          in
          match stamps with
          | [] | [ _ ] -> None
          | (s0, ts0) :: rest ->
            List.find_map
              (fun (s, ts) ->
                match (ts0, ts) with
                | Some x, Some y when Timestamp.compare x y <> 0 ->
                  Some
                    (Fmt.str
                       "%a committed with ts %a at shard %d but %a at shard \
                        %d"
                       Activity.pp act Timestamp.pp x s0 Timestamp.pp y s)
                | Some _, None | None, Some _ ->
                  Some
                    (Fmt.str "%a has a timestamp on only some shards"
                       Activity.pp act)
                | _ -> None)
              rest)
        gtxns
    in
    match ts_disagreement with
    | Some msg -> Some msg
    | None ->
      let stuck = Group.in_doubt_count group in
      if stuck > 0 then
        Some (Fmt.str "%d legs stuck in-doubt after resolution" stuck)
      else begin
        let sys = Cc.System.create ~policy:entry.Catalog.policy () in
        List.iter
          (fun id ->
            Cc.System.add_object sys
              (entry.Catalog.make_object (Cc.System.log sys) id))
          ids;
        match
          Cc.Recovery.replay_txns sys (Group.committed_projection group)
        with
        | Ok _ -> None
        | Error f ->
          Some (Fmt.str "merged replay: %a" Cc.Recovery.pp_failure f)
      end)

let check_global entry group a b gtxns = check_global_n entry group [ a; b ] gtxns

(* Wider-than-two probe groups: the same opposite-order pattern walked
   across three shards, completed either cleanly or with a participant
   crash injected mid-2PC (after its yes-vote), followed by WAL
   recovery and in-doubt resolution.  A two-shard pattern cannot build
   the shape where a decided commit must reach a shard that was down
   when the decision was made while a third shard already applied it —
   the window where atomic commitment, timestamp agreement, and the
   merged replay can each diverge independently. *)
let fresh_wide (entry : Catalog.entry) =
  let group = Group.create ~policy:entry.Catalog.policy ~seed:0 ~shards:3 () in
  let ids = pick_ids_n group 3 in
  List.iter (fun id -> Group.add_object group id entry.Catalog.make_object) ids;
  (group, ids)

let run_setup_n group ids ops =
  let g = Group.begin_txn group (Activity.update "init") in
  let rec go = function
    | [] -> (
      match Group.commit group g with
      | (_ : Group.commit_outcome) -> Some ()
      | exception _ -> None)
    | op :: rest ->
      if
        List.for_all
          (fun id ->
            match Group.invoke group g id op with
            | Group.Granted _ -> true
            | Group.Wait _ | Group.Refused _ -> false)
          ids
      then go rest
      else None
  in
  go ops

let participant_crash =
  { Weihl_dist.Tpc.no_fault with f_participant_crash = Some (1, `After_vote) }

let run_wide entry setup p q ~crash =
  let group, ids = fresh_wide entry in
  match run_setup_n group ids setup with
  | None -> `Setup_blocked
  | Some () -> (
    let t1 = Group.begin_txn group (Activity.update "u1") in
    let t2 = Group.begin_txn group (Activity.update "u2") in
    let step g obj op k =
      match Group.invoke group g obj op with
      | Group.Granted _ -> k ()
      | Group.Wait _ | Group.Refused _ -> `Blocked
      | exception exn -> `Crashed (Printexc.to_string exn)
    in
    (* T1 walks the shards forward, T2 backward, interleaved — each
       shard sees a different half of the race. *)
    let forward = ids and backward = List.rev ids in
    let rec walk xs ys k =
      match (xs, ys) with
      | [], [] -> k ()
      | x :: xs, y :: ys ->
        step t1 x p @@ fun () ->
        step t2 y q @@ fun () -> walk xs ys k
      | _ -> assert false
    in
    walk forward backward @@ fun () ->
    match
      if crash then begin
        (* Participant 1 (in first-touch order: the middle shard) dies
           after voting yes; the decision is reached without it. *)
        ignore (Group.commit ~fault:participant_crash group t1);
        List.iter
          (fun s ->
            if Group.shard_crashed group s then begin
              let text = Group.durable_shard group s in
              match Group.recover_shard group s text with
              | Ok _ -> ()
              | Error f ->
                failwith (Fmt.str "recovery: %a" Cc.Recovery.pp_failure f)
            end)
          (List.init (Group.shard_count group) Fun.id);
        ignore (Group.resolve_in_doubt group);
        (* The crash killed T2's surviving legs; commit it only if it
           is somehow still active. *)
        if Gtxn.is_active t2 then ignore (Group.commit group t2)
      end
      else begin
        ignore (Group.commit group t1);
        ignore (Group.commit group t2)
      end
    with
    | () -> `Completed (group, ids, [ t1; t2 ])
    | exception exn -> `Crashed (Printexc.to_string exn))

let probe_wide entry setup p q ~crash =
  match run_wide entry setup p q ~crash with
  | `Setup_blocked -> None
  | `Blocked -> Some Blocked
  | `Crashed exn ->
    Some
      (Granted_unsound
         (Fmt.str "wide %s completion raised: %s"
            (if crash then "crash" else "clean")
            exn))
  | `Completed (group, ids, gtxns) -> (
    match check_global_n entry group ids gtxns with
    | Some why ->
      Some
        (Granted_unsound
           (Fmt.str "wide %s completion: %s"
              (if crash then "crash" else "clean")
              why))
    | None -> Some Granted_sound)

let probe_pair entry ~t2_read_only setup p q =
  let completions : completion list =
    if t2_read_only then [ `CC; `CC_rev; `A1C2 ]
    else [ `CC; `CC_rev; `C1A2; `A1C2 ]
  in
  let rec go = function
    | [] -> Some Granted_sound
    | completion :: rest -> (
      match run_pattern entry ~t2_read_only setup p q ~completion with
      | `Setup_blocked -> None
      | `Blocked -> Some Blocked
      | `Crashed exn ->
        Some
          (Granted_unsound
             (Fmt.str "completion %s raised: %s" (completion_name completion)
                exn))
      | `Completed (group, a, b, t1, t2) -> (
        match check_global entry group a b [ t1; t2 ] with
        | Some why ->
          Some
            (Granted_unsound
               (Fmt.str "completion %s: %s" (completion_name completion) why))
        | None -> go rest))
  in
  go completions

let run (entry : Catalog.entry) ~setups =
  let d = entry.Catalog.domain in
  let probed = ref 0 in
  let granted = ref 0 in
  let blocked = ref 0 in
  let unsound = ref [] in
  let variants =
    match entry.Catalog.policy with
    | `Hybrid ->
      [ ("update-update", false, fun _ -> true);
        ("update-readonly", true, d.Domain.read_only) ]
    | `None_ | `Static -> [ ("update-update", false, fun _ -> true) ]
  in
  List.iter
    (fun (label, t2_read_only, q_ok) ->
      List.iter
        (fun setup ->
          let setup_usable = ref true in
          List.iter
            (fun p ->
              List.iter
                (fun q ->
                  if !setup_usable && q_ok q then begin
                    match probe_pair entry ~t2_read_only setup p q with
                    | None -> setup_usable := false
                    | Some status ->
                      incr probed;
                      (match status with
                      | Granted_sound -> incr granted
                      | Blocked -> incr blocked
                      | Granted_unsound _ ->
                        unsound :=
                          {
                            x_setup = setup;
                            x_variant = label;
                            x_p = p;
                            x_q = q;
                            x_status = status;
                          }
                          :: !unsound)
                  end)
                d.Domain.alphabet)
            d.Domain.alphabet)
        setups)
    variants;
  let wide_probed = ref 0 in
  let wide_granted = ref 0 in
  let wide_blocked = ref 0 in
  let wide_unsound = ref [] in
  List.iter
    (fun setup ->
      let setup_usable = ref true in
      List.iter
        (fun p ->
          List.iter
            (fun q ->
              List.iter
                (fun crash ->
                  if !setup_usable then begin
                    match probe_wide entry setup p q ~crash with
                    | None -> setup_usable := false
                    | Some status ->
                      incr wide_probed;
                      (match status with
                      | Granted_sound -> incr wide_granted
                      | Blocked -> incr wide_blocked
                      | Granted_unsound why ->
                        wide_unsound :=
                          {
                            w_setup = setup;
                            w_p = p;
                            w_q = q;
                            w_mode =
                              (if crash then "participant-crash" else "clean");
                            w_problem = why;
                          }
                          :: !wide_unsound)
                  end)
                [ false; true ])
            d.Domain.alphabet)
        d.Domain.alphabet)
    setups;
  {
    probed = !probed;
    granted = !granted;
    blocked = !blocked;
    unsound = List.rev !unsound;
    wide_probed = !wide_probed;
    wide_granted = !wide_granted;
    wide_blocked = !wide_blocked;
    wide_unsound = List.rev !wide_unsound;
  }

let pp_ops ppf ops =
  if ops = [] then Fmt.string ppf "(empty)"
  else Fmt.(list ~sep:(any ";") Operation.pp) ppf ops

let pp_xpair ppf x =
  let status =
    match x.x_status with
    | Granted_sound -> "granted, sound"
    | Blocked -> "blocked"
    | Granted_unsound why -> "UNSOUND: " ^ why
  in
  Fmt.pf ppf "@[<h>cross-shard [%a] t1:%a@@a,b t2:%a@@b,a (%s): %s@]" pp_ops
    x.x_setup Operation.pp x.x_p Operation.pp x.x_q x.x_variant status

let pp_wide ppf w =
  Fmt.pf ppf "@[<h>wide [%a] t1:%a@@a,b,c t2:%a@@c,b,a (%s): %s@]" pp_ops
    w.w_setup Operation.pp w.w_p Operation.pp w.w_q w.w_mode w.w_problem
