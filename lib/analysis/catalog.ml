open Weihl_event
module Cc = Weihl_cc
module Adt = Weihl_adt

type entry = {
  name : string;
  policy : Cc.System.ts_policy;
  domain : Domain.t;
  make_object : Cc.Event_log.t -> Object_id.t -> Cc.Atomic_object.t;
}

let account = Domain.find_exn "account"
let intset = Domain.find_exn "intset"

(* One synthesized protocol per registry domain, compiled lazily (and
   memoized) at the canonical depth 3 — the certification depth CI
   runs.  Probing at other depths still certifies the same shipped
   table, which is the honest question: is the compiled artifact
   sound? *)
let derived (d : Domain.t) =
  {
    name = "derived_" ^ d.Domain.name;
    policy = `None_;
    domain = d;
    make_object =
      (fun log id ->
        Synthesize.make_object (Synthesize.of_domain ~depth:3 d) log id);
  }

let all =
  [
    {
      name = "rw";
      policy = `None_;
      domain = account;
      make_object =
        (fun log id -> Cc.Op_locking.rw log id (module Adt.Bank_account));
    };
    {
      name = "commutativity";
      policy = `None_;
      domain = account;
      make_object =
        (fun log id ->
          Cc.Op_locking.commutativity log id (module Adt.Bank_account));
    };
    {
      name = "escrow";
      policy = `None_;
      domain = account;
      make_object = Cc.Escrow_account.make;
    };
    {
      name = "rw_undo";
      policy = `None_;
      domain = account;
      make_object =
        (fun log id -> Cc.Rw_undo.make log id (module Adt.Bank_account));
    };
    {
      name = "multiversion";
      policy = `Static;
      domain = account;
      make_object =
        (fun log id -> Cc.Multiversion.make log id Adt.Bank_account.spec);
    };
    {
      name = "hybrid";
      policy = `Hybrid;
      domain = account;
      make_object =
        (fun log id -> Cc.Hybrid.of_adt log id (module Adt.Bank_account));
    };
    {
      name = "hybrid_account";
      policy = `Hybrid;
      domain = account;
      make_object = Cc.Hybrid_account.make;
    };
    {
      name = "da_set";
      policy = `None_;
      domain = intset;
      make_object = Cc.Da_set.make;
    };
    {
      name = "multiversion_set";
      policy = `Static;
      domain = intset;
      make_object = (fun log id -> Cc.Multiversion.make log id Adt.Intset.spec);
    };
    {
      name = "da_generic_set";
      policy = `None_;
      domain = intset;
      make_object = (fun log id -> Cc.Da_generic.make log id Adt.Intset.spec);
    };
    {
      name = "da_kv";
      policy = `None_;
      domain = Domain.find_exn "kv";
      make_object = Cc.Da_kv.make;
    };
    {
      name = "da_semiqueue";
      policy = `None_;
      domain = Domain.find_exn "semiqueue";
      make_object = Cc.Da_semiqueue.make;
    };
    {
      name = "da_queue";
      policy = `None_;
      domain = Domain.find_exn "queue";
      make_object = (fun log id -> Cc.Da_queue.make log id);
    };
    {
      name = "da_counter";
      policy = `None_;
      domain = Domain.find_exn "blind_counter";
      make_object = Cc.Da_counter.make;
    };
  ]
  @ List.map derived Domain.all

let find name = List.find_opt (fun e -> e.name = name) all

let policy_name = function
  | `None_ -> "dynamic"
  | `Static -> "static"
  | `Hybrid -> "hybrid"
