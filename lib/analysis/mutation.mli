(** The certifier's own acceptance test: seeded corruptions that a
    working lint pass must flag.

    Five table corruptions (a hand-table entry flipped to "commutes",
    including the semiqueue [deq]/[deq] flip only the non-deterministic
    engine can catch) and five protocol corruptions (locking objects
    built over corrupted conflict relations, plus the multiversion
    grant guard with the PR 3 committed+own validation switched off).
    [self_test] certifies each mutant exactly the way [weihl lint]
    certifies the real catalogue; a mutation is {e detected} when its
    certificate contains an unsound entry.  A missed mutation means
    the certifier has a blind spot — the lint CLI and CI treat it as a
    failure. *)

type outcome = {
  name : string;
  kind : string;  (** ["table"] or ["protocol"] *)
  description : string;
  detected : bool;
  evidence : string;  (** the first unsound finding, when detected *)
}

val self_test : depth:int -> outcome list
val all_detected : outcome list -> bool
val pp_outcome : Format.formatter -> outcome -> unit
