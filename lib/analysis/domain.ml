open Weihl_event
module Adt = Weihl_adt

type t = {
  name : string;
  spec : Weihl_spec.Seq_spec.t;
  alphabet : Operation.t list;
  commutes : Operation.t -> Operation.t -> bool;
  read_only : Operation.t -> bool;
}

let of_adt name (module A : Adt.Adt_sig.S) alphabet =
  {
    name;
    spec = A.spec;
    alphabet;
    commutes = A.commutes;
    read_only = (fun op -> A.classify op = Adt.Adt_sig.Read);
  }

let all =
  [
    of_adt "intset"
      (module Adt.Intset)
      Adt.Intset.
        [ insert 1; insert 2; delete 1; delete 2; member 1; member 2; size ];
    of_adt "counter" (module Adt.Counter) [ Adt.Counter.increment ];
    of_adt "account"
      (module Adt.Bank_account)
      Adt.Bank_account.[ deposit 5; deposit 2; withdraw 3; withdraw 6; balance ];
    of_adt "queue"
      (module Adt.Fifo_queue)
      Adt.Fifo_queue.[ enqueue 1; enqueue 2; dequeue ];
    of_adt "register"
      (module Adt.Register)
      Adt.Register.[ read; write 1; write 2 ];
    of_adt "kv"
      (module Adt.Kv_map)
      Adt.Kv_map.[ put 1 10; put 1 20; put 2 10; get 1; get 2; remove 1; size ];
    of_adt "semiqueue" (module Adt.Semiqueue) Adt.Semiqueue.[ enq 1; enq 2; deq ];
    of_adt "stack" (module Adt.Stack) Adt.Stack.[ push 1; push 2; pop ];
    of_adt "pqueue"
      (module Adt.Priority_queue)
      Adt.Priority_queue.[ add 1; add 5; extract_min; find_min ];
    of_adt "blind_counter"
      (module Adt.Blind_counter)
      Adt.Blind_counter.[ bump 1; bump 2; read ];
    of_adt "log"
      (module Adt.Append_log)
      Adt.Append_log.[ append 1; append 2; size; read 0 ];
  ]

let find name = List.find_opt (fun d -> d.name = name) all

let find_exn name =
  match find name with
  | Some d -> d
  | None -> invalid_arg (Fmt.str "Domain.find_exn: unknown domain %s" name)
