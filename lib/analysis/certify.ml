module Json = Weihl_obs.Json
module Commutativity = Weihl_theory.Commutativity

type protocol_cert = {
  protocol : string;
  adt : string;
  policy : string;
  depth : int;
  probe : Probe.t;
  cross : Xprobe.t;
  pairs_probed : int;
  granted_sound : int;
  blocked_justified : int;
  unsound : string list;
  loose : string list;
  looseness : float;
  synthesis : Synthesize.t option;
}

type report = {
  depth : int;
  budget : int option;
  tables : Table_cert.t list;
  protocols : protocol_cert list;
  warnings : string list;
}

let derived_prefix = "derived_"

let is_derived name =
  String.length name > String.length derived_prefix
  && String.sub name 0 (String.length derived_prefix) = derived_prefix

let certify_protocol ~depth (entry : Catalog.entry) =
  let probe = Probe.run ~depth entry in
  let setups, _ = Probe.enumerate_setups entry.Catalog.domain ~depth in
  let cross = Xprobe.run entry ~setups in
  let count f = List.length (List.filter f probe.Probe.pairs) in
  let granted_sound =
    count (fun p -> p.Probe.status = Probe.Granted_sound)
  in
  let blocked_justified =
    count (fun p -> p.Probe.status = Probe.Blocked_justified)
  in
  let describe f =
    List.filter_map
      (fun p -> if f p.Probe.status then Some (Fmt.str "%a" Probe.pp_pair p)
        else None)
      probe.Probe.pairs
  in
  let unsound_pairs =
    describe (function Probe.Granted_unsound _ -> true | _ -> false)
  in
  let unsound_triples =
    List.map (Fmt.str "%a" Probe.pp_triple) probe.Probe.triple_unsound
  in
  let unsound_multis =
    List.map (Fmt.str "%a" Probe.pp_multi) probe.Probe.multi_unsound
  in
  let unsound_cross =
    List.map (Fmt.str "%a" Xprobe.pp_xpair) cross.Xprobe.unsound
  in
  let unsound_wide =
    List.map (Fmt.str "%a" Xprobe.pp_wide) cross.Xprobe.wide_unsound
  in
  let loose =
    describe (function Probe.Blocked_loose _ -> true | _ -> false)
  in
  let n_loose = List.length loose in
  let looseness =
    (* Of the pairs that could soundly have been granted, the fraction
       the protocol blocked anyway: its lost-concurrency ratio. *)
    if granted_sound + n_loose = 0 then 0.
    else float_of_int n_loose /. float_of_int (granted_sound + n_loose)
  in
  let synthesis =
    (* Derived protocols ship the table compiled at the canonical depth
       (see Catalog); report the synthesis behind the object probed, not
       a recompile at the probe depth. *)
    if is_derived entry.Catalog.name then
      Some (Synthesize.of_domain ~depth:3 entry.Catalog.domain)
    else None
  in
  {
    protocol = entry.Catalog.name;
    adt = entry.Catalog.domain.Domain.name;
    policy = Catalog.policy_name entry.Catalog.policy;
    depth;
    probe;
    cross;
    pairs_probed = List.length probe.Probe.pairs;
    granted_sound;
    blocked_justified;
    unsound =
      unsound_pairs @ unsound_triples @ unsound_multis @ unsound_cross
      @ unsound_wide;
    loose;
    looseness;
    synthesis;
  }

let stats_warning ~what ~budget (s : Commutativity.stats) =
  if s.Commutativity.truncated then
    Some
      (Fmt.str
         "%s: exploration TRUNCATED by the state cap (%d frontiers kept of \
          %d enumerated) — verdicts beyond the kept set are Unknown, not \
          proved"
         what s.Commutativity.distinct s.Commutativity.enumerated)
  else if not s.Commutativity.stabilized then
    Some
      (Fmt.str
         "%s: frontier count NOT stabilized at depth %d (%d distinct \
          frontiers%s) — verdicts hold only to the explored bound; rerun \
          with a larger --budget to search for a closed set"
         what s.Commutativity.depth_used s.Commutativity.distinct
         (match budget with
         | Some b -> Fmt.str ", budget %d" b
         | None -> ""))
  else None

let collect_warnings ?budget tables protocols =
  let table_warnings =
    List.filter_map
      (fun (t : Table_cert.t) ->
        stats_warning ~what:(Fmt.str "table %s" t.Table_cert.adt) ~budget
          t.Table_cert.stats)
      tables
  in
  let synth_warnings =
    List.filter_map
      (fun p ->
        Option.bind p.synthesis (fun s ->
            stats_warning
              ~what:(Fmt.str "synthesis %s" p.protocol)
              ~budget:(Some (Synthesize.budget_for (Synthesize.depth s)))
              (Weihl_theory.Synthesize.stats (Synthesize.table s))))
      protocols
  in
  table_warnings @ synth_warnings

let run ?protocol ?budget ~depth () =
  let make tables protocols =
    {
      depth;
      budget;
      tables;
      protocols;
      warnings = collect_warnings ?budget tables protocols;
    }
  in
  match protocol with
  | None ->
    make
      (List.map (Table_cert.certify ?budget ~depth) Domain.all)
      (List.map (certify_protocol ~depth) Catalog.all)
  | Some name -> (
    match Catalog.find name with
    | Some entry ->
      make
        [ Table_cert.certify ?budget ~depth entry.Catalog.domain ]
        [ certify_protocol ~depth entry ]
    | None -> (
      match Domain.find name with
      | Some d -> make [ Table_cert.certify ?budget ~depth d ] []
      | None -> invalid_arg (Fmt.str "lint: unknown protocol or ADT %s" name)))

let unsound_total r =
  List.fold_left
    (fun acc t -> acc + List.length (Table_cert.unsound t))
    0 r.tables
  + List.fold_left (fun acc p -> acc + List.length p.unsound) 0 r.protocols

let table_to_json (t : Table_cert.t) =
  let entries es =
    Json.List (List.map (fun e -> Json.Str (Fmt.str "%a" Table_cert.pp_entry e)) es)
  in
  Json.Obj
    [
      ("adt", Json.Str t.Table_cert.adt);
      ("entries", Json.Num (float_of_int (List.length t.Table_cert.entries)));
      ("exploration", Synthesize.stats_to_json t.Table_cert.stats);
      ("unsound", entries (Table_cert.unsound t));
      ("loose", entries (Table_cert.loose t));
      ("unknown", entries (Table_cert.unknown t));
    ]

let synthesis_to_json s =
  let table = Synthesize.table s in
  let commute, conflicts, unknown = Weihl_theory.Synthesize.counts table in
  Json.Obj
    [
      ("depth", Json.Num (float_of_int (Synthesize.depth s)));
      ( "budget",
        Json.Num (float_of_int (Synthesize.budget_for (Synthesize.depth s))) );
      ( "exploration",
        Synthesize.stats_to_json (Weihl_theory.Synthesize.stats table) );
      ( "classes",
        Json.Num
          (float_of_int
             (List.length (Weihl_theory.Synthesize.classes table))) );
      ( "cells",
        Json.Obj
          [
            ("commute", Json.Num (float_of_int commute));
            ("conflict", Json.Num (float_of_int conflicts));
            ("unknown", Json.Num (float_of_int unknown));
          ] );
      ( "refinements",
        Json.Num
          (float_of_int
             (List.length (Weihl_theory.Synthesize.refinements table))) );
    ]

let protocol_to_json (p : protocol_cert) =
  let strings l = Json.List (List.map (fun s -> Json.Str s) l) in
  Json.Obj
    ([
       ("protocol", Json.Str p.protocol);
       ("adt", Json.Str p.adt);
       ("policy", Json.Str p.policy);
       ( "setups",
         Json.Obj
           [
             ( "enumerated",
               Json.Num (float_of_int p.probe.Probe.setups_enumerated) );
             ("distinct", Json.Num (float_of_int p.probe.Probe.setups_distinct));
             ("skipped", Json.Num (float_of_int p.probe.Probe.setups_skipped));
           ] );
       ("pairs_probed", Json.Num (float_of_int p.pairs_probed));
       ("granted_sound", Json.Num (float_of_int p.granted_sound));
       ("blocked_justified", Json.Num (float_of_int p.blocked_justified));
       ("triples_probed", Json.Num (float_of_int p.probe.Probe.triples_probed));
       ("triples_granted", Json.Num (float_of_int p.probe.Probe.triples_granted));
       ("multis_probed", Json.Num (float_of_int p.probe.Probe.multis_probed));
       ("multis_granted", Json.Num (float_of_int p.probe.Probe.multis_granted));
       ( "cross",
         Json.Obj
           [
             ("probed", Json.Num (float_of_int p.cross.Xprobe.probed));
             ("granted", Json.Num (float_of_int p.cross.Xprobe.granted));
             ("blocked", Json.Num (float_of_int p.cross.Xprobe.blocked));
             ( "unsound",
               Json.Num (float_of_int (List.length p.cross.Xprobe.unsound)) );
             ("wide_probed", Json.Num (float_of_int p.cross.Xprobe.wide_probed));
             ( "wide_granted",
               Json.Num (float_of_int p.cross.Xprobe.wide_granted) );
             ( "wide_blocked",
               Json.Num (float_of_int p.cross.Xprobe.wide_blocked) );
             ( "wide_unsound",
               Json.Num
                 (float_of_int (List.length p.cross.Xprobe.wide_unsound)) );
           ] );
       ("unsound", strings p.unsound);
       ("loose", strings p.loose);
       ("looseness", Json.Num p.looseness);
     ]
    @
    match p.synthesis with
    | None -> []
    | Some s -> [ ("synthesis", synthesis_to_json s) ])

let to_json r =
  Json.Obj
    ([ ("depth", Json.Num (float_of_int r.depth)) ]
    @ (match r.budget with
      | Some b -> [ ("budget", Json.Num (float_of_int b)) ]
      | None -> [])
    @ [
        ("tables", Json.List (List.map table_to_json r.tables));
        ("protocols", Json.List (List.map protocol_to_json r.protocols));
        ( "warnings",
          Json.List (List.map (fun w -> Json.Str w) r.warnings) );
        ("unsound_total", Json.Num (float_of_int (unsound_total r)));
      ])

let pp_protocol ppf p =
  Fmt.pf ppf
    "@[<h>%-18s %-14s %-8s %4d pairs (%d setups of %d enumerated): %d sound, \
     %d unsound, %d justified, %d loose (looseness %.2f), %d triples (%d \
     unsound), %d multis (%d unsound), %d cross (%d unsound), %d wide (%d \
     unsound)@]"
    p.protocol p.adt p.policy p.pairs_probed p.probe.Probe.setups_distinct
    p.probe.Probe.setups_enumerated p.granted_sound (List.length p.unsound)
    p.blocked_justified (List.length p.loose) p.looseness
    p.probe.Probe.triples_probed
    (List.length p.probe.Probe.triple_unsound)
    p.probe.Probe.multis_probed
    (List.length p.probe.Probe.multi_unsound)
    p.cross.Xprobe.probed
    (List.length p.cross.Xprobe.unsound)
    p.cross.Xprobe.wide_probed
    (List.length p.cross.Xprobe.wide_unsound)

let pp ?(verbose = false) ppf r =
  Fmt.pf ppf "@[<v>";
  List.iter (fun t -> Fmt.pf ppf "%a@," Table_cert.pp t) r.tables;
  (if verbose then
     List.iter
       (fun t ->
         List.iter
           (fun e -> Fmt.pf ppf "  UNSOUND %a@," Table_cert.pp_entry e)
           (Table_cert.unsound t);
         List.iter
           (fun e -> Fmt.pf ppf "  loose %a@," Table_cert.pp_entry e)
           (Table_cert.loose t);
         List.iter
           (fun e -> Fmt.pf ppf "  unknown %a@," Table_cert.pp_entry e)
           (Table_cert.unknown t))
       r.tables);
  List.iter
    (fun p ->
      Fmt.pf ppf "%a@," pp_protocol p;
      List.iter (fun s -> Fmt.pf ppf "  UNSOUND %s@," s) p.unsound;
      if verbose then List.iter (fun s -> Fmt.pf ppf "  loose %s@," s) p.loose)
    r.protocols;
  List.iter (fun w -> Fmt.pf ppf "WARNING %s@," w) r.warnings;
  Fmt.pf ppf "unsound entries: %d@]" (unsound_total r)
