(* The command-line front end.

     weihl check HISTORY.txt --spec x=intset
     weihl sim --protocol escrow --workload hot --clients 16
     weihl census --ops 2
     weihl tpc --participants 4 --crash mid:1
     weihl faults --schedules 50 --quick

   See `weihl --help` and each subcommand's `--help`. *)

open Core
open Cmdliner

(* ------------------------------------------------------------------ *)
(* Specification registry (catalogue + inference live in the library)  *)
(* ------------------------------------------------------------------ *)

let infer_spec = Adt_registry.infer_spec

let build_env history spec_bindings =
  let explicit =
    List.fold_left
      (fun env (obj, name) ->
        match Adt_registry.find name with
        | Some spec -> Spec_env.add (Object_id.v obj) spec env
        | None -> Fmt.failwith "unknown ADT %s (try --list-adts)" name)
      Spec_env.empty spec_bindings
  in
  List.fold_left
    (fun env obj ->
      match Spec_env.find env obj with
      | Some _ -> env
      | None -> (
        let ops =
          List.filter_map
            (function
              | Event.Invoke (_, x, op) when Object_id.equal x obj -> Some op
              | _ -> None)
            (History.to_list history)
        in
        match infer_spec ops with
        | Some spec -> Spec_env.add obj spec env
        | None ->
          Fmt.failwith
            "cannot infer a specification for object %a; pass --spec %a=ADT"
            Object_id.pp obj Object_id.pp obj))
    explicit (History.objects history)

(* ------------------------------------------------------------------ *)
(* weihl check                                                         *)
(* ------------------------------------------------------------------ *)

let check_cmd file spec_bindings mode_name =
  let contents =
    let ic = open_in file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  match Notation.history_of_string contents with
  | Error e -> Fmt.epr "parse error: %a@." Notation.pp_error e; 1
  | Ok h ->
    let mode =
      match mode_name with
      | "base" -> Wellformed.Base
      | "static" -> Wellformed.Static
      | "hybrid" -> Wellformed.Hybrid
      | m -> Fmt.failwith "unknown mode %s (base|static|hybrid)" m
    in
    let env = build_env h spec_bindings in
    Fmt.pr "history: %d events, %d activities, %d objects@." (History.length h)
      (List.length (History.activities h))
      (List.length (History.objects h));
    (match Wellformed.check mode h with
    | Ok () -> Fmt.pr "well-formed (%s): yes@." mode_name
    | Error vs ->
      Fmt.pr "well-formed (%s): NO@." mode_name;
      List.iter (fun v -> Fmt.pr "  - %a@." Wellformed.pp_violation v) vs);
    Fmt.pr "atomic:          %b@." (Atomicity.atomic env h);
    (match Atomicity.serialization_witness env h with
    | Some order ->
      Fmt.pr "  witness order: %a@."
        Fmt.(list ~sep:(any "-") Activity.pp)
        order
    | None -> ());
    Fmt.pr "dynamic atomic:  %b@." (Atomicity.dynamic_atomic env h);
    (match History.timestamp_order h with
    | Some _ ->
      Fmt.pr "static atomic:   %b@." (Atomicity.static_atomic env h);
      Fmt.pr "hybrid atomic:   %b@." (Atomicity.hybrid_atomic env h)
    | None ->
      Fmt.pr "static/hybrid:   n/a (no timestamps on committed activities)@.");
    0

(* ------------------------------------------------------------------ *)
(* weihl sim                                                           *)
(* ------------------------------------------------------------------ *)

let sim_cmd protocol workload clients duration seed dump trace metrics =
  let mk_account_obj sys id =
    let log = System.log sys in
    match protocol with
    | "rw" -> Op_locking.rw log id (module Bank_account)
    | "commutativity" -> Op_locking.commutativity log id (module Bank_account)
    | "escrow" -> Escrow_account.make log id
    | "multiversion" -> Multiversion.make log id Bank_account.spec
    | "hybrid" -> Hybrid.of_adt log id (module Bank_account)
    | p -> Fmt.failwith "unknown protocol %s" p
  in
  let policy =
    match protocol with
    | "multiversion" -> `Static
    | "hybrid" -> `Hybrid
    | _ -> `None_
  in
  let sys = System.create ~policy () in
  let w =
    match workload with
    | "banking" ->
      let w = Workload.banking () in
      List.iter (fun id -> System.add_object sys (mk_account_obj sys id))
        w.Workload.objects;
      w
    | "hot" ->
      let w = Workload.hot_withdrawals () in
      List.iter (fun id -> System.add_object sys (mk_account_obj sys id))
        w.Workload.objects;
      w
    | "set" ->
      let w = Workload.set_ops () in
      let log = System.log sys in
      List.iter
        (fun id ->
          let obj =
            match protocol with
            | "rw" -> Op_locking.rw log id (module Intset)
            | "commutativity" -> Op_locking.commutativity log id (module Intset)
            | "escrow" -> Da_set.make log id (* data-dependent set *)
            | "multiversion" -> Multiversion.make log id Intset.spec
            | "hybrid" -> Hybrid.of_adt log id (module Intset)
            | p -> Fmt.failwith "unknown protocol %s" p
          in
          System.add_object sys obj)
        w.Workload.objects;
      w
    | "kv" ->
      let w = Workload.kv_ops () in
      let log = System.log sys in
      List.iter
        (fun id ->
          let obj =
            match protocol with
            | "rw" -> Op_locking.rw log id (module Kv_map)
            | "commutativity" -> Op_locking.commutativity log id (module Kv_map)
            | "escrow" -> Da_kv.make log id (* data-dependent map *)
            | "multiversion" -> Multiversion.make log id Kv_map.spec
            | "hybrid" -> Hybrid.of_adt log id (module Kv_map)
            | p -> Fmt.failwith "unknown protocol %s" p
          in
          System.add_object sys obj)
        w.Workload.objects;
      w
    | "semiqueue" ->
      let w = Workload.semiqueue_producers_consumers () in
      let log = System.log sys in
      List.iter
        (fun id ->
          let obj =
            match protocol with
            | "rw" -> Op_locking.rw log id (module Semiqueue)
            | "commutativity" ->
              Op_locking.commutativity log id (module Semiqueue)
            | "escrow" -> Da_semiqueue.make log id (* data-dependent *)
            | "multiversion" -> Multiversion.make log id Semiqueue.spec
            | "hybrid" -> Hybrid.of_adt log id (module Semiqueue)
            | p -> Fmt.failwith "unknown protocol %s" p
          in
          System.add_object sys obj)
        w.Workload.objects;
      w
    | w -> Fmt.failwith "unknown workload %s (banking|hot|set|kv|semiqueue)" w
  in
  let config = { Driver.default_config with clients; duration; seed } in
  let recorder =
    if trace <> None || metrics then Some (Obs.Recorder.create ()) else None
  in
  let probe = Option.map Obs.Recorder.sink recorder in
  let o = Driver.run ~config ?probe sys w in
  Fmt.pr "%a@." Driver.pp_outcome o;
  Fmt.pr "@.by label: %a@."
    Fmt.(list ~sep:comma (pair ~sep:(any "=") string int))
    o.Driver.committed_by_label;
  (match (recorder, metrics) with
  | Some r, true -> Fmt.pr "@.%s@." (Obs.Recorder.report r)
  | _ -> ());
  (match (recorder, trace) with
  | Some r, Some path ->
    let oc = open_out path in
    output_string oc (Obs.Recorder.export_trace r);
    output_string oc "\n";
    close_out oc;
    Fmt.pr "trace written to %s (open in ui.perfetto.dev or chrome://tracing)@."
      path
  | _ -> ());
  (match dump with
  | Some path ->
    let oc = open_out path in
    output_string oc (Notation.history_to_string (System.history sys));
    output_string oc "\n";
    close_out oc;
    Fmt.pr "history written to %s@." path
  | None -> ());
  0

(* ------------------------------------------------------------------ *)
(* weihl census                                                        *)
(* ------------------------------------------------------------------ *)

let census_cmd () =
  (* The E5 census, callable directly. *)
  let xs = Object_id.v "s" in
  let env = Spec_env.of_list [ (xs, Intset.spec) ] in
  let a = Activity.update "a" and b = Activity.update "b" in
  let op_choices =
    [
      (Intset.insert 1, [ Value.ok ]);
      (Intset.member 1, [ Value.Bool true; Value.Bool false ]);
      (Intset.delete 1, [ Value.ok ]);
    ]
  in
  let sessions act ts (op, res) =
    [
      Event.initiate act xs (Timestamp.v ts);
      Event.invoke act xs op;
      Event.respond act xs res;
      Event.commit act xs;
    ]
  in
  let rec interleave u v =
    match (u, v) with
    | [], v -> [ v ]
    | u, [] -> [ u ]
    | x :: u', y :: v' ->
      List.map (fun rest -> x :: rest) (interleave u' v)
      @ List.map (fun rest -> y :: rest) (interleave u v')
  in
  let total = ref 0
  and atomic = ref 0
  and dynamic = ref 0
  and static = ref 0 in
  List.iter
    (fun (opa, ras) ->
      List.iter
        (fun (opb, rbs) ->
          List.iter
            (fun ra ->
              List.iter
                (fun rb ->
                  List.iter
                    (fun (ta, tb) ->
                      List.iter
                        (fun events ->
                          let h = History.of_list events in
                          if Wellformed.is_well_formed Wellformed.Static h
                          then begin
                            incr total;
                            if Atomicity.atomic env h then incr atomic;
                            if Atomicity.dynamic_atomic env h then
                              incr dynamic;
                            if Atomicity.static_atomic env h then incr static
                          end)
                        (interleave
                           (sessions a ta (opa, ra))
                           (sessions b tb (opb, rb))))
                    [ (1, 2); (2, 1) ])
                rbs)
            ras)
        op_choices)
    op_choices;
  Fmt.pr "well-formed: %d  atomic: %d  dynamic: %d  static: %d@." !total
    !atomic !dynamic !static;
  0

(* ------------------------------------------------------------------ *)
(* weihl recover                                                       *)
(* ------------------------------------------------------------------ *)

let recover_cmd file protocol order_name =
  let contents =
    let ic = open_in file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let order =
    match order_name with
    | "commit" -> Recovery.Commit_order
    | "timestamp" -> Recovery.Timestamp_order
    | o -> Fmt.failwith "unknown order %s (commit|timestamp)" o
  in
  match Notation.history_of_string contents with
  | Error e ->
    Fmt.epr "parse error: %a@." Notation.pp_error e;
    1
  | Ok h ->
    let policy =
      match protocol with
      | "multiversion" -> `Static
      | "hybrid" -> `Hybrid
      | _ -> `None_
    in
    let sys = System.create ~policy () in
    let log = System.log sys in
    (* Build one object per object in the log; infer ADTs as in
       check. *)
    List.iter
      (fun obj ->
        let ops =
          List.filter_map
            (function
              | Event.Invoke (_, o, op) when Object_id.equal o obj -> Some op
              | _ -> None)
            (History.to_list h)
        in
        match infer_spec ops with
        | None ->
          Fmt.failwith "cannot infer a specification for %a" Object_id.pp obj
        | Some spec ->
          let o =
            match protocol with
            | "generic" -> Da_generic.make log obj spec
            | "multiversion" -> Multiversion.make log obj spec
            | p -> Fmt.failwith "unknown recovery protocol %s (generic|multiversion)" p
          in
          System.add_object sys o)
      (History.objects h);
    (match Recovery.restore order sys h with
    | Ok n ->
      Fmt.pr "recovered %d committed transactions@." n;
      Fmt.pr "replayed history:@.%a@." History.pp (System.history sys);
      0
    | Error e ->
      Fmt.epr "recovery failed: %s@." e;
      1)

(* ------------------------------------------------------------------ *)
(* weihl explore                                                       *)
(* ------------------------------------------------------------------ *)

let explore_cmd () =
  (* A built-in demonstration scope: the Section 5.1 bank scripts under
     the escrow protocol, every schedule model-checked. *)
  let y = Object_id.v "acct" in
  let env = Spec_env.of_list [ (y, Bank_account.spec) ] in
  let histories =
    Explore.all_histories
      ~make_system:(fun () ->
        let sys = System.create () in
        System.add_object sys (Escrow_account.make (System.log sys) y);
        let t = System.begin_txn sys (Activity.update "seed") in
        ignore (System.invoke sys t y (Bank_account.deposit 10));
        System.commit sys t;
        sys)
      [
        (`Update, [ (y, Bank_account.withdraw 4) ]);
        (`Update, [ (y, Bank_account.withdraw 3); (y, Bank_account.deposit 1) ]);
        (`Update, [ (y, Bank_account.balance) ]);
      ]
  in
  let ok =
    List.for_all (fun h -> Atomicity.dynamic_atomic env h) histories
  in
  Fmt.pr
    "explored every schedule of 3 bank transactions under escrow:@.\
     %d distinct histories, all dynamic atomic: %b@."
    (List.length histories) ok;
  if ok then 0 else 1

(* ------------------------------------------------------------------ *)
(* weihl tpc                                                           *)
(* ------------------------------------------------------------------ *)

let tpc_cmd participants crash no_voter seed metrics =
  let coordinator_crash =
    match crash with
    | "none" -> Tpc.No_crash
    | "before" -> Tpc.Before_prepare
    | "after" -> Tpc.After_prepare
    | s -> (
      match String.index_opt s ':' with
      | Some i when String.sub s 0 i = "mid" ->
        Tpc.Mid_decision
          (int_of_string (String.sub s (i + 1) (String.length s - i - 1)))
      | _ -> Fmt.failwith "unknown crash point %s (none|before|after|mid:K)" s)
  in
  let votes =
    List.init participants (fun i ->
        if Some i = no_voter then Tpc.No else Tpc.Yes)
  in
  let cfg =
    {
      Tpc.default_config with
      participants;
      site_clocks = List.init participants (fun i -> i * 3);
      votes;
      coordinator_crash;
      seed;
    }
  in
  let reg = if metrics then Some (Obs.Metrics.Registry.create ()) else None in
  let o = Tpc.run ?metrics:reg cfg in
  Fmt.pr "%a@." Tpc.pp_outcome o;
  Fmt.pr "atomic commitment: %b@." (Tpc.atomic_commitment o);
  (match reg with
  | Some r -> Fmt.pr "@.%s@." (Obs.Metrics.Registry.render_text r)
  | None -> ());
  0

(* ------------------------------------------------------------------ *)
(* weihl faults                                                        *)
(* ------------------------------------------------------------------ *)

let write_json path json =
  let oc = open_out path in
  output_string oc (Obs.Json.to_string json);
  output_string oc "\n";
  close_out oc;
  Fmt.pr "report written to %s@." path

(* The long-soak mode: one checkpointing shard group lives through
   [cycles] crash→recover cycles with seeded checkpoint damage.  The
   per-cycle recovery report goes to [--report] for CI artifacts. *)
let soak_to_json (r : Shard_harness.soak_report) =
  let num n = Obs.Json.Num (float_of_int n) in
  let cycle (c : Shard_harness.cycle_report) =
    Obs.Json.Obj
      [
        ("cycle", num c.Shard_harness.cycle);
        ("victim", num c.Shard_harness.victim);
        ( "ckpt_fault",
          Obs.Json.Str
            (Fmt.str "%a" Shard_plan.pp_ckpt c.Shard_harness.ckpt_fault) );
        ("committed", num c.Shard_harness.cycle_committed);
        ( "source",
          Obs.Json.Str (Fmt.str "%a" Recovery.pp_source c.Shard_harness.source)
        );
        ( "fallbacks",
          Obs.Json.List
            (List.map
               (fun f -> Obs.Json.Str f)
               c.Shard_harness.fallbacks) );
        ("wal_records", num c.Shard_harness.wal_records);
        ("replayed", num c.Shard_harness.replayed);
        ("replay_bound", num c.Shard_harness.replay_bound);
        ( "verdict",
          Obs.Json.Str
            (Fmt.str "%a" Shard_harness.pp_verdict c.Shard_harness.cycle_verdict)
        );
      ]
  in
  Obs.Json.Obj
    [
      ("protocol", Obs.Json.Str r.Shard_harness.soak_protocol);
      ("cycles", num r.Shard_harness.cycles_run);
      ("committed", num r.Shard_harness.soak_committed);
      ("diverged", num r.Shard_harness.soak_diverged);
      ("bound_violations", num r.Shard_harness.bound_violations);
      ("checkpoint_recoveries", num r.Shard_harness.checkpoint_recoveries);
      ("full_replays", num r.Shard_harness.full_replays);
      ("loud_fallbacks", num r.Shard_harness.loud_fallbacks);
      ( "cycle_reports",
        Obs.Json.List (List.map cycle r.Shard_harness.cycle_reports) );
    ]

let soak_cmd cycles seed report verbose =
  let config =
    { Shard_harness.default_soak with soak_seed = seed; cycles }
  in
  let r = Shard_harness.run_soak ~config () in
  if verbose then
    List.iter
      (fun c -> Fmt.pr "%a@." Shard_harness.pp_cycle c)
      r.Shard_harness.cycle_reports;
  Fmt.pr "%a@." Shard_harness.pp_soak r;
  (match report with
  | Some path -> write_json path (soak_to_json r)
  | None -> ());
  match Shard_harness.soak_divergences r with
  | [] -> 0
  | ds ->
    Fmt.epr "@.divergent cycles:@.";
    List.iter (fun c -> Fmt.epr "  %a@." Shard_harness.pp_cycle c) ds;
    1

let faults_cmd schedules quick base_seed protocol verbose soak report =
  match soak with
  | Some cycles -> soak_cmd cycles base_seed report verbose
  | None ->
  let seeds = List.init schedules (fun i -> base_seed + i) in
  let summary =
    match protocol with
    | None -> Fault_harness.run_many ~quick ~seeds ()
    | Some name -> (
      match Fault_harness.find_protocol name with
      | None ->
        Fmt.failwith "unknown protocol %s (one of: %s)" name
          (String.concat ", "
             (List.map
                (fun p -> p.Fault_harness.name)
                Fault_harness.catalog))
      | Some proto ->
        let results =
          List.map
            (fun seed ->
              Fault_harness.run_schedule ~quick (Fault_plan.generate ~seed)
                proto)
            seeds
        in
        let count p = List.length (List.filter p results) in
        {
          Fault_harness.schedules = List.length results;
          converged =
            count (fun r -> r.Fault_harness.verdict = Fault_harness.Converged);
          corruption_detected =
            count (fun r ->
                r.Fault_harness.verdict = Fault_harness.Corruption_detected);
          diverged =
            count (fun r ->
                match r.Fault_harness.verdict with
                | Fault_harness.Diverged _ -> true
                | _ -> false);
          results;
        })
  in
  if verbose then
    List.iter
      (fun r -> Fmt.pr "%a@." Fault_harness.pp_result r)
      summary.Fault_harness.results;
  Fmt.pr "%a@." Fault_harness.pp_summary summary;
  match Fault_harness.divergences summary with
  | [] -> 0
  | ds ->
    Fmt.epr "@.divergent schedules:@.";
    List.iter (fun r -> Fmt.epr "  %a@." Fault_harness.pp_result r) ds;
    1

(* ------------------------------------------------------------------ *)
(* weihl shard                                                         *)
(* ------------------------------------------------------------------ *)

let find_sharded_protocol name =
  match
    List.find_opt
      (fun (p : Fault_harness.protocol) -> p.Fault_harness.name = name)
      Shard_harness.protocols
  with
  | Some p -> p
  | None ->
    Fmt.failwith "unknown sharded protocol %s (one of: %s)" name
      (String.concat ", "
         (List.map
            (fun (p : Fault_harness.protocol) -> p.Fault_harness.name)
            Shard_harness.protocols))

let shard_sweep_to_json (s : Shard_harness.summary) =
  let num n = Obs.Json.Num (float_of_int n) in
  Obs.Json.Obj
    [
      ("schedules", num s.Shard_harness.schedules);
      ("converged", num s.Shard_harness.converged);
      ("corruption_detected", num s.Shard_harness.corruption_detected);
      ("diverged", num s.Shard_harness.diverged);
      ( "divergent",
        Obs.Json.List
          (List.map
             (fun r -> Obs.Json.Str (Fmt.str "%a" Shard_harness.pp_result r))
             (Shard_harness.divergences s)) );
    ]

(* The replication face of the shard payload: per-replica apply lag
   (records and virtual time) and the group-wide promotion / resync /
   stale-bounce counters, read back out of Obs.Shard_metrics, plus the
   tier's own channel counters. *)
let replication_fields sm tier =
  match (sm, tier) with
  | Some m, Some t when Obs.Shard_metrics.replica_count m > 0 ->
    let num n = Obs.Json.Num (float_of_int n) in
    [
      ( "replication",
        Obs.Json.Obj
          [
            ("replicas", num (Obs.Shard_metrics.replica_count m));
            ( "per_replica",
              Obs.Json.List
                (List.init
                   (Obs.Shard_metrics.replica_count m)
                   (fun i ->
                     Obs.Json.Obj
                       [
                         ( "lag_records",
                           num (Obs.Shard_metrics.replica_lag m i) );
                         ( "lag_vtime",
                           num (Obs.Shard_metrics.replica_lag_vtime m i) );
                         ( "applied",
                           num (Obs.Shard_metrics.replica_applied_count m i) );
                         ("reads", num (Obs.Shard_metrics.replica_reads m i));
                       ])) );
            ("promotions", num (Obs.Shard_metrics.promotion_count m));
            ("resyncs", num (Obs.Shard_metrics.resync_count m));
            ("stale_bounces", num (Obs.Shard_metrics.stale_bounce_count m));
            ("segments_shipped", num (Replica_tier.segments_shipped t));
            ("damaged_segments", num (Replica_tier.damaged_segments t));
            ("fenced_segments", num (Replica_tier.fenced_segments t));
            ("reads_primary", num (Replica_tier.reads_primary t));
            ( "channel",
              Obs.Json.Obj
                [
                  ("dropped", num (Replica_tier.channel_dropped t));
                  ("duplicated", num (Replica_tier.channel_duplicated t));
                  ("reordered", num (Replica_tier.channel_reordered t));
                ] );
          ] );
    ]
  | _ -> []

let drill_report_to_json (r : Replica_drill.report) =
  let num n = Obs.Json.Num (float_of_int n) in
  Obs.Json.Obj
    [
      ("schedules", num r.Replica_drill.schedules);
      ("committed", num r.Replica_drill.r_committed);
      ("reads", num r.Replica_drill.r_reads);
      ("replica_served", num r.Replica_drill.r_replica_served);
      ("bounced", num r.Replica_drill.r_bounced);
      ("unavailable", num r.Replica_drill.r_unavailable);
      ("lost_commits", num r.Replica_drill.r_lost);
      ("stale_served", num r.Replica_drill.r_stale);
      ("promotions", num r.Replica_drill.r_promotions);
      ("resyncs", num r.Replica_drill.r_resyncs);
      ("damaged_segments", num r.Replica_drill.r_damaged);
      ("diverged", num r.Replica_drill.r_diverged);
      ( "divergent",
        Obs.Json.List
          (List.map
             (fun d -> Obs.Json.Str (Fmt.str "%a" Replica_drill.pp_schedule d))
             (Replica_drill.divergences r)) );
    ]

(* Histogram summaries and Msim per-cause message counters for the
   machine-readable shard payloads.  The msim.* counters tick in the
   shard-metrics registry, which every 2PC round's message simulation
   shares. *)
let shard_metrics_fields sm =
  match sm with
  | None -> []
  | Some m ->
    let reg = Obs.Shard_metrics.registry m in
    let c name =
      Obs.Json.Num
        (float_of_int
           (Obs.Metrics.Counter.value (Obs.Metrics.Registry.counter reg name)))
    in
    [
      ( "tpc_duration",
        Obs.Metrics.Histogram.to_json (Obs.Shard_metrics.tpc_duration m) );
      ( "shard_fanout",
        Obs.Metrics.Histogram.to_json (Obs.Shard_metrics.fanout m) );
      ( "group_commit",
        Obs.Json.Obj
          [
            ( "batch_size",
              Obs.Metrics.Histogram.to_json
                (Obs.Shard_metrics.group_commit_batch m) );
            ( "wal_appends",
              Obs.Json.Num
                (float_of_int (Obs.Shard_metrics.wal_append_count m)) );
            ( "wal_syncs",
              Obs.Json.Num (float_of_int (Obs.Shard_metrics.wal_sync_count m))
            );
            ( "syncs_per_commit",
              Obs.Json.Num (Obs.Shard_metrics.syncs_per_commit m) );
          ] );
      ( "mailbox_depth_max",
        Obs.Json.List
          (List.init
             (Obs.Shard_metrics.shard_count m)
             (fun s -> Obs.Json.Num (Obs.Shard_metrics.mailbox_depth m s))) );
      ( "checkpoint",
        Obs.Json.Obj
          [
            ( "writes",
              Obs.Json.Num
                (float_of_int (Obs.Shard_metrics.checkpoint_count m)) );
            ( "write_duration",
              Obs.Metrics.Histogram.to_json (Obs.Shard_metrics.checkpoint_write m)
            );
            ("age_records", Obs.Json.Num (Obs.Shard_metrics.checkpoint_age m));
          ] );
      ( "recovery",
        Obs.Json.Obj
          [
            ( "count",
              Obs.Json.Num (float_of_int (Obs.Shard_metrics.recovery_count m))
            );
            ( "duration",
              Obs.Metrics.Histogram.to_json
                (Obs.Shard_metrics.recovery_duration m) );
            ( "records_replayed",
              Obs.Metrics.Histogram.to_json
                (Obs.Shard_metrics.recovery_records m) );
          ] );
      ( "msim",
        Obs.Json.Obj
          [
            ("dropped_crashed_src", c "msim.dropped.crashed_src");
            ("dropped_crashed_dst", c "msim.dropped.crashed_dst");
            ("dropped_partition", c "msim.dropped.partition");
            ("dropped_fault", c "msim.dropped.fault");
            ("duplicated", c "msim.duplicated");
            ("reordered", c "msim.reordered");
          ] );
    ]

let shard_outcome_to_json ?(extra = []) shards (o : Sharded_driver.outcome) =
  let num n = Obs.Json.Num (float_of_int n) in
  Obs.Json.Obj
    ([
       ("shards", num shards);
       ("committed", num o.Sharded_driver.committed);
       ("committed_multi", num o.Sharded_driver.committed_multi);
       ("committed_single", num o.Sharded_driver.committed_single);
       ("committed_read_only", num o.Sharded_driver.committed_read_only);
       ("aborted_deadlock", num o.Sharded_driver.aborted_deadlock);
       ("aborted_refused", num o.Sharded_driver.aborted_refused);
       ("aborted_tpc", num o.Sharded_driver.aborted_tpc);
       ("aborted_starved", num o.Sharded_driver.aborted_starved);
       ("left_in_doubt", num o.Sharded_driver.left_in_doubt);
       ("multi_attempts", num o.Sharded_driver.multi_attempts);
       ("waits", num o.Sharded_driver.waits);
       ("restarts", num o.Sharded_driver.restarts);
       ("ticks", num o.Sharded_driver.ticks);
     ]
    @ extra)

let window_to_json (w : Sharded_driver.window) =
  let num n = Obs.Json.Num (float_of_int n) in
  Obs.Json.Obj
    [
      ("start", num w.Sharded_driver.w_start);
      ("arrivals", num w.Sharded_driver.w_arrivals);
      ("committed", num w.Sharded_driver.w_committed);
      ("aborted", num w.Sharded_driver.w_aborted);
      ("p50", Obs.Json.Num w.Sharded_driver.w_p50);
      ("p99", Obs.Json.Num w.Sharded_driver.w_p99);
    ]

let open_outcome_to_json ?(extra = []) shards
    (o : Sharded_driver.open_outcome) =
  let num n = Obs.Json.Num (float_of_int n) in
  Obs.Json.Obj
    ([
       ("shards", num shards);
       ("offered_per_1000", Obs.Json.Num o.Sharded_driver.offered);
       ("arrivals", num o.Sharded_driver.arrivals);
       ("committed", num o.Sharded_driver.o_committed);
       ("committed_multi", num o.Sharded_driver.o_committed_multi);
       ("aborted", num o.Sharded_driver.o_aborted);
       ( "abort_causes",
         Obs.Json.Obj
           (List.map (fun (k, v) -> (k, num v)) o.Sharded_driver.abort_causes)
       );
       ("in_doubt", num o.Sharded_driver.o_in_doubt);
       ("in_flight_end", num o.Sharded_driver.in_flight_end);
       ("ticks", num o.Sharded_driver.o_ticks);
       ( "throughput_per_1000",
         Obs.Json.Num
           (1000.
           *. float_of_int o.Sharded_driver.o_committed
           /. float_of_int o.Sharded_driver.o_ticks) );
       ("latency", Obs.Metrics.Histogram.to_json o.Sharded_driver.latency);
       ( "shard_latency",
         Obs.Json.List
           (Array.to_list
              (Array.map Obs.Metrics.Histogram.to_json
                 o.Sharded_driver.shard_latency)) );
       ( "windows",
         Obs.Json.List (List.map window_to_json o.Sharded_driver.windows) );
     ]
    @ extra)

let mcore_outcome_to_json ?(extra = []) ~domains shards
    (o : Mcore_driver.outcome) =
  let num n = Obs.Json.Num (float_of_int n) in
  Obs.Json.Obj
    ([
       ("shards", num shards);
       ("domains", num domains);
       ("committed", num o.Mcore_driver.committed);
       ("committed_multi", num o.Mcore_driver.committed_multi);
       ("aborted_deadlock", num o.Mcore_driver.aborted_deadlock);
       ("aborted_starved", num o.Mcore_driver.aborted_starved);
       ("aborted_refused", num o.Mcore_driver.aborted_refused);
       ("aborted_lost", num o.Mcore_driver.aborted_lost);
       ("gave_up", num o.Mcore_driver.gave_up);
       ("waits", num o.Mcore_driver.waits);
       ("restarts", num o.Mcore_driver.restarts);
       ("rounds", num o.Mcore_driver.rounds);
       ("elapsed_s", Obs.Json.Num o.Mcore_driver.elapsed);
       ("throughput_txn_s", Obs.Json.Num o.Mcore_driver.throughput);
     ]
    @ extra)

let shard_cmd shards domains replicas clients duration seed protocol faults
    schedules quick verbose metrics json trace open_loop rate sweep zipf hot
    hot_keys window mcore jobs inflight sync_us checkpoint_every archive =
  if faults then begin
    let seeds = List.init schedules (fun i -> seed + i) in
    let summary =
      match protocol with
      | None -> Shard_harness.run_many ~quick ~shards ~seeds ()
      | Some name ->
        let proto = find_sharded_protocol name in
        let results =
          List.map
            (fun seed ->
              Shard_harness.run_schedule ~quick ~shards
                (Shard_plan.generate ~seed) proto)
            seeds
        in
        let count p = List.length (List.filter p results) in
        {
          Shard_harness.schedules = List.length results;
          converged =
            count (fun r ->
                r.Shard_harness.verdict = Shard_harness.Converged);
          corruption_detected =
            count (fun r ->
                r.Shard_harness.verdict = Shard_harness.Corruption_detected);
          diverged =
            count (fun r ->
                match r.Shard_harness.verdict with
                | Shard_harness.Diverged _ -> true
                | _ -> false);
          results;
        }
    in
    if verbose then
      List.iter
        (fun r -> Fmt.pr "%a@." Shard_harness.pp_result r)
        summary.Shard_harness.results;
    Fmt.pr "%a@." Shard_harness.pp_summary summary;
    (match json with
    | Some path -> write_json path (shard_sweep_to_json summary)
    | None -> ());
    match Shard_harness.divergences summary with
    | [] -> 0
    | ds ->
      Fmt.epr "@.divergent schedules:@.";
      List.iter (fun r -> Fmt.epr "  %a@." Shard_harness.pp_result r) ds;
      1
  end
  else begin
    let proto =
      find_sharded_protocol (Option.value protocol ~default:"escrow")
    in
    let w0 = proto.Fault_harness.workload () in
    let key_dist =
      match (zipf, hot) with
      | Some _, Some _ -> Fmt.failwith "--zipf and --hot are mutually exclusive"
      | Some theta, None -> Some (fun n -> Workload.zipf ~theta ~n)
      | None, Some h -> Some (fun n -> Workload.hotspot ~hot:h ~hot_keys ~n)
      | None, None -> None
    in
    let w =
      match key_dist with
      | None -> w0
      | Some mk ->
        if w0.Workload.name <> "banking" then
          Fmt.failwith "--zipf/--hot apply to the banking workload only";
        let n = List.length w0.Workload.objects in
        Workload.banking ~accounts:n ~key_dist:(mk n) ()
    in
    let checkpoint =
      Option.map
        (fun every -> { Shard_group.default_checkpoint with every; archive })
        checkpoint_every
    in
    if archive && checkpoint = None then
      Fmt.failwith "--archive needs --checkpoint-every";
    let mk_group ?group_commit ?sync_cost ~with_metrics () =
      let sm =
        if with_metrics then
          Some (Obs.Shard_metrics.create ~replicas ~shards ())
        else None
      in
      let group =
        Shard_group.create ~policy:proto.Fault_harness.policy ?metrics:sm ~seed
          ~domains ?group_commit ?sync_cost ?checkpoint ~shards ()
      in
      List.iter
        (fun id ->
          Shard_group.add_object group id proto.Fault_harness.make_object)
        w.Workload.objects;
      (group, sm)
    in
    let domains_field group =
      ("domains", Obs.Json.Num (float_of_int (Shard_group.domain_count group)))
    in
    let write_trace st =
      match trace with
      | None -> ()
      | Some path ->
        let oc = open_out path in
        output_string oc (Obs.Shard_trace.export st);
        output_string oc "\n";
        close_out oc;
        Fmt.pr
          "trace written to %s (weihl trace analyze %s; or load in \
           ui.perfetto.dev)@."
          path path
    in
    let report_metrics sm =
      match sm with
      | Some m when metrics -> Fmt.pr "@.%s@." (Obs.Shard_metrics.render m)
      | _ -> ()
    in
    if mcore then begin
      (* The wall-clock batched runtime: group commit on, a simulated
         device sync per shard, one domain per shard when --domains
         says so.  Results are domain-count independent; only the
         elapsed time changes. *)
      let group, sm =
        mk_group ~group_commit:true
          ~sync_cost:(fun () -> Unix.sleepf (float_of_int sync_us *. 1e-6))
          ~with_metrics:(metrics || Option.is_some json)
          ()
      in
      let config = { Mcore_driver.default_config with jobs; inflight; seed } in
      let o = Mcore_driver.run ~config ~now:Unix.gettimeofday group w in
      Fmt.pr "%a@." Mcore_driver.pp o;
      Fmt.pr "domains: %d over %d shards, sync cost %dus@."
        (Shard_group.domain_count group)
        shards sync_us;
      report_metrics sm;
      (match json with
      | Some path ->
        write_json path
          (mcore_outcome_to_json
             ~extra:(shard_metrics_fields sm)
             ~domains:(Shard_group.domain_count group)
             shards o)
      | None -> ());
      let rc = if Shard_group.in_doubt_count group = 0 then 0 else 1 in
      Shard_group.shutdown group;
      rc
    end
    else if open_loop then begin
      let cfg rate =
        {
          Sharded_driver.default_open_config with
          rate;
          o_duration = duration;
          window;
          o_seed = seed;
        }
      in
      if sweep <> [] then begin
        (* Rate sweep: a fresh group per offered load, same seed and
           workload, so the knee curve is deterministic per seed. *)
        let curve =
          List.map
            (fun r ->
              let group, _ = mk_group ~with_metrics:false () in
              let o = Sharded_driver.run_open ~config:(cfg r) group w in
              Shard_group.shutdown group;
              (r, o))
            sweep
        in
        Fmt.pr "open-loop rate sweep (%d ticks, window %d):@." duration window;
        Fmt.pr "%10s %9s %9s %10s %8s %8s %8s@." "rate/1kt" "arrivals"
          "commit" "thru/1kt" "p50" "p99" "abort%";
        List.iter
          (fun (r, (o : Sharded_driver.open_outcome)) ->
            let thru =
              1000.
              *. float_of_int o.Sharded_driver.o_committed
              /. float_of_int o.Sharded_driver.o_ticks
            in
            let ab =
              if o.Sharded_driver.arrivals = 0 then 0.
              else
                100.
                *. float_of_int o.Sharded_driver.o_aborted
                /. float_of_int o.Sharded_driver.arrivals
            in
            Fmt.pr "%10.1f %9d %9d %10.1f %8.1f %8.1f %7.1f%%@." (r *. 1000.)
              o.Sharded_driver.arrivals o.Sharded_driver.o_committed thru
              (Obs.Metrics.Histogram.percentile o.Sharded_driver.latency 50.)
              (Obs.Metrics.Histogram.percentile o.Sharded_driver.latency 99.)
              ab)
          curve;
        (match json with
        | Some path ->
          write_json path
            (Obs.Json.Obj
               [
                 ( "sweep",
                   Obs.Json.List
                     (List.map
                        (fun (_, o) -> open_outcome_to_json shards o)
                        curve) );
               ])
        | None -> ());
        0
      end
      else begin
        let group, sm =
          mk_group ~with_metrics:(metrics || Option.is_some json) ()
        in
        let tracer =
          Option.map (fun _ -> Obs.Shard_trace.create ~shards) trace
        in
        let o = Sharded_driver.run_open ~config:(cfg rate) ?tracer group w in
        Fmt.pr "%a@." Sharded_driver.pp_open_outcome o;
        report_metrics sm;
        Option.iter write_trace tracer;
        (match json with
        | Some path ->
          write_json path
            (open_outcome_to_json
               ~extra:(domains_field group :: shard_metrics_fields sm)
               shards o)
        | None -> ());
        let rc = if o.Sharded_driver.o_in_doubt = 0 then 0 else 1 in
        Shard_group.shutdown group;
        rc
      end
    end
    else begin
      let sm' = metrics || Option.is_some json || replicas > 0 in
      let group, sm = mk_group ~with_metrics:sm' () in
      let tier =
        if replicas = 0 then None
        else begin
          if domains > 1 then
            Fmt.failwith
              "--replicas needs --domains 1 (the tier's watermark cut relies \
               on the sequential mode)";
          Some
            (Replica_tier.create ?metrics:sm ~seed ~replicas
               ~make_object:proto.Fault_harness.make_object group)
        end
      in
      (* Ship on every commit: the tier cuts and delivers a segment per
         live shard and replica, so replicas trail the primary by at
         most one commit's worth of records during the run. *)
      let on_commit =
        Option.map
          (fun t g gt ~nth_multi:_ ->
            let r = Shard_group.commit g gt in
            Replica_tier.pump t;
            r)
          tier
      in
      let tracer =
        Option.map (fun _ -> Obs.Shard_trace.create ~shards) trace
      in
      let config =
        { Sharded_driver.default_config with clients; duration; seed }
      in
      let o = Sharded_driver.run ~config ?tracer ?on_commit group w in
      Fmt.pr "%a@." Sharded_driver.pp_outcome o;
      Fmt.pr "objects: %d over %d shards, 2pc rounds: %d@."
        (List.length (Shard_group.objects group))
        shards
        (Shard_group.tpc_rounds group);
      (match checkpoint with
      | Some _ ->
        List.init shards (fun s ->
            ( List.length (Shard_group.checkpoint_files group s),
              Shard_group.wal_base group s ))
        |> List.iteri (fun s (files, base) ->
               Fmt.pr "shard %d: %d checkpoint(s) retained, wal truncated at \
                       record %d@."
                 s files base)
      | None -> ());
      (match tier with
      | None -> ()
      | Some t ->
        Replica_tier.sync t;
        (* A read batch through the tier, so the run demonstrates the
           snapshot path — timestamp-policy protocols only; under
           `None_ there are no initiation timestamps to read at. *)
        (if proto.Fault_harness.policy <> `None_ then begin
           let rng = Rng.create ((seed * 131) + 7) in
           let read_steps () =
             let rec go n =
               if n = 0 then None
               else
                 let s = w.Workload.generate rng in
                 if s.Workload.kind = `Read_only then
                   Some
                     (List.map
                        (fun st -> (st.Workload.obj, st.Workload.op))
                        s.Workload.steps)
                 else go (n - 1)
             in
             go 100
           in
           let served = ref 0 and bounced = ref 0 in
           for _ = 1 to 8 * replicas do
             match read_steps () with
             | None -> ()
             | Some steps -> (
               match Replica_tier.read t steps with
               | Ok ro ->
                 (match ro.Replica_tier.serve with
                 | Replica_tier.Served_replica _ -> incr served
                 | Replica_tier.Served_primary -> ());
                 if ro.Replica_tier.bounced then incr bounced
               | Error e -> Fmt.epr "replica read failed: %s@." e)
           done;
           Fmt.pr "snapshot reads: %d replica-served, %d bounced to primary@."
             !served !bounced
         end
         else
           Fmt.pr
             "snapshot reads skipped: protocol %s has no initiation \
              timestamps (try --protocol hybrid)@."
             proto.Fault_harness.name);
        Fmt.pr "@.%s@." (Replica_tier.render t));
      report_metrics sm;
      Option.iter write_trace tracer;
      (match json with
      | Some path ->
        write_json path
          (shard_outcome_to_json
             ~extra:
               ((domains_field group :: shard_metrics_fields sm)
               @ replication_fields sm tier)
             shards o)
      | None -> ());
      let rc = if o.Sharded_driver.left_in_doubt = 0 then 0 else 1 in
      Shard_group.shutdown group;
      rc
    end
  end

(* ------------------------------------------------------------------ *)
(* weihl replica                                                       *)
(* ------------------------------------------------------------------ *)

(* A deterministic shipping demo for the lag report: a hybrid group
   under traffic with staggered per-replica apply lag, sampled before
   the final sync so the report shows replicas actually trailing, then
   a read batch through the tier. *)
let replica_lag_demo ~shards ~replicas ~seed =
  let proto = find_sharded_protocol "hybrid" in
  let w = proto.Fault_harness.workload () in
  let sm = Obs.Shard_metrics.create ~replicas ~shards () in
  let group =
    Shard_group.create ~policy:proto.Fault_harness.policy ~metrics:sm ~seed
      ~shards ()
  in
  List.iter
    (fun id -> Shard_group.add_object group id proto.Fault_harness.make_object)
    w.Workload.objects;
  let tier =
    Replica_tier.create ~metrics:sm ~seed ~replicas
      ~make_object:proto.Fault_harness.make_object group
  in
  let config =
    { Sharded_driver.default_config with clients = 4; duration = 400; seed }
  in
  ignore (Sharded_driver.run ~config group w);
  (* Ship the accumulated feed under staggered apply lag, sampling
     after a bounded pump budget so the report shows each replica at a
     different depth behind the primary. *)
  for i = 0 to replicas - 1 do
    Replica_tier.set_lag tier ~replica:i (4 * i)
  done;
  for _ = 1 to 12 do
    Replica_tier.pump tier
  done;
  let sampled =
    List.init replicas (fun i ->
        ( Replica_tier.lag_records tier ~replica:i,
          Obs.Shard_metrics.replica_lag_vtime sm i ))
  in
  Replica_tier.sync tier;
  let rng = Rng.create ((seed * 131) + 7) in
  for _ = 1 to 4 * replicas do
    let rec draw n =
      if n = 0 then None
      else
        let s = w.Workload.generate rng in
        if s.Workload.kind = `Read_only then
          Some
            (List.map
               (fun st -> (st.Workload.obj, st.Workload.op))
               s.Workload.steps)
        else draw (n - 1)
    in
    match draw 100 with
    | None -> ()
    | Some steps -> ignore (Replica_tier.read tier steps)
  done;
  let num n = Obs.Json.Num (float_of_int n) in
  let payload =
    Obs.Json.Obj
      [
        ("shards", num shards);
        ("replicas", num replicas);
        ( "per_replica",
          Obs.Json.List
            (List.mapi
               (fun i (lag, vtime) ->
                 Obs.Json.Obj
                   [
                     ("sampled_lag_records", num lag);
                     ("sampled_lag_vtime", num vtime);
                     ( "final_lag_records",
                       num (Replica_tier.lag_records tier ~replica:i) );
                     ("applied", num (Obs.Shard_metrics.replica_applied_count sm i));
                     ("reads", num (Obs.Shard_metrics.replica_reads sm i));
                   ])
               sampled) );
        ("segments_shipped", num (Replica_tier.segments_shipped tier));
        ("resyncs", num (Replica_tier.resyncs tier));
        ("stale_bounces", num (Obs.Shard_metrics.stale_bounce_count sm));
        ("reads_primary", num (Replica_tier.reads_primary tier));
      ]
  in
  let rendered = Replica_tier.render tier in
  Shard_group.shutdown group;
  (payload, rendered)

let replica_cmd shards replicas schedules seed quick verbose json =
  let seeds = List.init schedules (fun i -> seed + i) in
  let r = Replica_drill.run_many ~quick ~shards ~replicas ~seeds () in
  if verbose then
    List.iter
      (fun d -> Fmt.pr "%a@." Replica_drill.pp_schedule d)
      r.Replica_drill.results;
  Fmt.pr "%a@." Replica_drill.pp_report r;
  let demo, rendered = replica_lag_demo ~shards ~replicas ~seed in
  Fmt.pr "@.lag report (hybrid demo tier, staggered apply lag):@.%s@." rendered;
  (match json with
  | Some path ->
    write_json path
      (Obs.Json.Obj
         [ ("drill", drill_report_to_json r); ("lag_demo", demo) ])
  | None -> ());
  match Replica_drill.divergences r with
  | [] -> if Replica_drill.clean r then 0 else 1
  | ds ->
    Fmt.epr "@.divergent schedules:@.";
    List.iter (fun d -> Fmt.epr "  %a@." Replica_drill.pp_schedule d) ds;
    1

(* ------------------------------------------------------------------ *)
(* weihl trace                                                         *)
(* ------------------------------------------------------------------ *)

let trace_analyze_cmd file top json =
  let contents =
    let ic = open_in file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  match Obs.Trace.parse contents with
  | Error e ->
    Fmt.epr "trace parse error: %s@." e;
    1
  | Ok evs ->
    let r = Obs.Trace_analysis.analyze evs in
    Fmt.pr "%s@?" (Obs.Trace_analysis.render ~top r);
    (match json with
    | Some path -> write_json path (Obs.Trace_analysis.to_json ~top r)
    | None -> ());
    0

(* ------------------------------------------------------------------ *)
(* weihl lint                                                          *)
(* ------------------------------------------------------------------ *)

(* Baseline gating: a committed LINT_0.json is the floor.  A protocol
   regresses when it reports more unsound findings than the snapshot
   (normally: any) or a strictly higher looseness — new protocols
   absent from the snapshot only have to be sound. *)
let baseline_regressions baseline (report : Lint.report) =
  let to_str_opt j = Obs.Json.to_str j in
  let protos =
    Option.value ~default:[]
      (Option.bind (Obs.Json.member "protocols" baseline) Obs.Json.to_list)
  in
  let find name =
    List.find_opt
      (fun p ->
        Option.bind (Obs.Json.member "protocol" p) to_str_opt = Some name)
      protos
  in
  List.concat_map
    (fun (p : Lint.protocol_cert) ->
      match find p.Lint.protocol with
      | None -> []
      | Some bj ->
        let b_unsound =
          match
            Option.bind (Obs.Json.member "unsound" bj) Obs.Json.to_list
          with
          | Some l -> List.length l
          | None -> 0
        in
        let b_loose =
          Option.value ~default:0.
            (Option.bind (Obs.Json.member "looseness" bj) Obs.Json.to_float)
        in
        let unsound_reg =
          if List.length p.Lint.unsound > b_unsound then
            [
              Fmt.str "%s: %d unsound findings (baseline %d)" p.Lint.protocol
                (List.length p.Lint.unsound)
                b_unsound;
            ]
          else []
        in
        let loose_reg =
          if p.Lint.looseness > b_loose +. 1e-9 then
            [
              Fmt.str "%s: looseness %.4f regressed past baseline %.4f"
                p.Lint.protocol p.Lint.looseness b_loose;
            ]
          else []
        in
        unsound_reg @ loose_reg)
    report.Lint.protocols

let lint_cmd protocol depth budget json baseline self_test verbose =
  if self_test then begin
    let outcomes = Lint_mutation.self_test ~depth in
    List.iter (fun o -> Fmt.pr "%a@." Lint_mutation.pp_outcome o) outcomes;
    let missed =
      List.filter (fun o -> not o.Lint_mutation.detected) outcomes
    in
    Fmt.pr "mutations: %d, detected: %d, missed: %d@." (List.length outcomes)
      (List.length outcomes - List.length missed)
      (List.length missed);
    if missed = [] then 0 else 1
  end
  else begin
    let report = Lint.run ?protocol ?budget ~depth () in
    Fmt.pr "%a@." (Lint.pp ~verbose) report;
    (* Warnings also go to stderr: a truncated or non-stabilized
       exploration must not scroll away inside the report body. *)
    List.iter (fun w -> Fmt.epr "lint: WARNING %s@." w) report.Lint.warnings;
    (match json with
    | Some path ->
      let oc = open_out path in
      output_string oc (Obs.Json.to_string (Lint.to_json report));
      output_string oc "\n";
      close_out oc;
      Fmt.pr "report written to %s@." path
    | None -> ());
    let regressions =
      match baseline with
      | None -> []
      | Some path -> (
        let ic = open_in path in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        match Obs.Json.of_string s with
        | Error e -> Fmt.failwith "cannot parse baseline %s: %s" path e
        | Ok b ->
          let rs = baseline_regressions b report in
          List.iter (fun r -> Fmt.epr "lint: REGRESSION vs %s: %s@." path r) rs;
          if rs = [] then
            Fmt.pr "baseline %s: no unsoundness or looseness regression@." path;
          rs)
    in
    if Lint.unsound_total report = 0 && regressions = [] then 0 else 1
  end

(* ------------------------------------------------------------------ *)
(* weihl synth                                                         *)
(* ------------------------------------------------------------------ *)

let synth_cmd adt depth json verbose =
  let syntheses =
    match adt with
    | None -> Synthesize.all ~depth ()
    | Some name -> (
      match Lint_domain.find name with
      | Some d -> [ Synthesize.of_domain ~depth d ]
      | None -> Fmt.failwith "unknown ADT %s (one of: %s)" name
          (String.concat ", "
             (List.map
                (fun (d : Lint_domain.t) -> d.Lint_domain.name)
                Lint_domain.all)))
  in
  List.iter
    (fun s ->
      Fmt.pr "%a@." Synthesize.pp s;
      if verbose then Fmt.pr "%a@." Synthesize.pp_matrix s)
    syntheses;
  (match json with
  | Some path ->
    write_json path
      (Obs.Json.List (List.map Synthesize.to_json syntheses))
  | None -> ());
  0

(* ------------------------------------------------------------------ *)
(* Command definitions                                                 *)
(* ------------------------------------------------------------------ *)

let spec_binding =
  let parse s =
    match String.index_opt s '=' with
    | Some i ->
      Ok
        ( String.sub s 0 i,
          String.sub s (i + 1) (String.length s - i - 1) )
    | None -> Error (`Msg "expected OBJECT=ADT")
  in
  let print ppf (o, a) = Fmt.pf ppf "%s=%s" o a in
  Arg.conv (parse, print)

let check_term =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"HISTORY_FILE")
  in
  let specs =
    Arg.(
      value & opt_all spec_binding []
      & info [ "spec" ] ~docv:"OBJECT=ADT"
          ~doc:"Bind an object to an ADT (default: inferred from operations).")
  in
  let mode =
    Arg.(
      value & opt string "base"
      & info [ "mode" ] ~docv:"MODE"
          ~doc:"Well-formedness regime: base, static or hybrid.")
  in
  Term.(const check_cmd $ file $ specs $ mode)

let sim_term =
  let protocol =
    Arg.(
      value & opt string "escrow"
      & info [ "protocol"; "p" ] ~docv:"PROTOCOL"
          ~doc:"rw | commutativity | escrow | multiversion | hybrid")
  in
  let workload =
    Arg.(
      value & opt string "banking"
      & info [ "workload"; "w" ] ~docv:"WORKLOAD" ~doc:"banking | hot | set | kv | semiqueue")
  in
  let clients = Arg.(value & opt int 8 & info [ "clients" ]) in
  let duration = Arg.(value & opt int 2000 & info [ "duration" ]) in
  let seed = Arg.(value & opt int 42 & info [ "seed" ]) in
  let dump =
    Arg.(
      value & opt (some string) None
      & info [ "dump-history" ] ~docv:"FILE"
          ~doc:"Write the generated history in the paper's notation.")
  in
  let trace =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Write a Chrome-trace (Perfetto) JSON timeline of the run.")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Print the metrics registry and per-object contention report.")
  in
  Term.(
    const sim_cmd $ protocol $ workload $ clients $ duration $ seed $ dump
    $ trace $ metrics)

let census_term = Term.(const census_cmd $ const ())

let recover_term =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"HISTORY_FILE")
  in
  let protocol =
    Arg.(
      value & opt string "generic"
      & info [ "protocol"; "p" ] ~docv:"PROTOCOL" ~doc:"generic | multiversion")
  in
  let order =
    Arg.(
      value & opt string "commit"
      & info [ "order" ] ~docv:"ORDER" ~doc:"commit | timestamp")
  in
  Term.(const recover_cmd $ file $ protocol $ order)

let explore_term = Term.(const explore_cmd $ const ())

let tpc_term =
  let participants = Arg.(value & opt int 3 & info [ "participants"; "n" ]) in
  let crash =
    Arg.(
      value & opt string "none"
      & info [ "crash" ] ~docv:"POINT" ~doc:"none | before | after | mid:K")
  in
  let no_voter =
    Arg.(
      value & opt (some int) None
      & info [ "no-vote" ] ~docv:"SITE" ~doc:"Site that votes no (0-based).")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ]) in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Print per-participant phase counters after the run.")
  in
  Term.(const tpc_cmd $ participants $ crash $ no_voter $ seed $ metrics)

let faults_term =
  let schedules =
    Arg.(
      value & opt int 200
      & info [ "schedules"; "n" ] ~docv:"N"
          ~doc:"Number of seeded fault schedules to run.")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"Shorten the traffic phases (smoke runs).")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"BASE"
          ~doc:"First seed; schedule i uses BASE+i.")
  in
  let protocol =
    Arg.(
      value & opt (some string) None
      & info [ "protocol"; "p" ] ~docv:"PROTOCOL"
          ~doc:
            "Run every schedule against one protocol instead of \
             round-robinning the catalog.")
  in
  let verbose =
    Arg.(
      value & flag & info [ "verbose"; "v" ] ~doc:"Print every schedule result.")
  in
  let soak =
    Arg.(
      value & opt (some int) None
      & info [ "soak" ] ~docv:"CYCLES"
          ~doc:
            "Run the long-soak crash→recover harness instead of the fault \
             sweep: one checkpointing shard group lives through CYCLES \
             rounds of traffic, each ended by a shard crash with seeded \
             checkpoint damage (bit flips, torn files, marker races) and a \
             checkpoint-aware recovery.  Exit non-zero if any cycle \
             diverges, replays past its tail bound, or consumes a damaged \
             checkpoint silently.  $(b,--seed) picks the protocol and the \
             damage sequence.")
  in
  let report =
    Arg.(
      value & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:"Write the per-cycle soak recovery report to FILE as JSON.")
  in
  Term.(
    const faults_cmd $ schedules $ quick $ seed $ protocol $ verbose $ soak
    $ report)

let shard_term =
  let shards =
    Arg.(
      value & opt int 4
      & info [ "shards" ] ~docv:"N" ~doc:"Number of shards in the group.")
  in
  let clients = Arg.(value & opt int 6 & info [ "clients" ]) in
  let duration = Arg.(value & opt int 1500 & info [ "duration" ]) in
  let seed = Arg.(value & opt int 42 & info [ "seed" ]) in
  let protocol =
    Arg.(
      value & opt (some string) None
      & info [ "protocol"; "p" ] ~docv:"PROTOCOL"
          ~doc:
            "A banking protocol (rw | commutativity | escrow | rw_undo | \
             multiversion | hybrid).  Traffic runs default to escrow; fault \
             sweeps round-robin all of them unless one is named.")
  in
  let faults =
    Arg.(
      value & flag
      & info [ "faults" ]
          ~doc:
            "Run the sharded crash-recovery sweep instead of a traffic run: \
             seeded schedules injecting coordinator/participant crashes at \
             every 2PC phase plus message drop/duplication/reordering, each \
             followed by WAL recovery, in-doubt resolution and global \
             atomicity checks.  Exit non-zero on any divergence.")
  in
  let schedules =
    Arg.(
      value & opt int 200
      & info [ "schedules"; "n" ] ~docv:"N"
          ~doc:"Number of seeded fault schedules (with --faults).")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"Shorten the traffic phases (smoke runs).")
  in
  let verbose =
    Arg.(
      value & flag & info [ "verbose"; "v" ] ~doc:"Print every schedule result.")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Print the per-shard and 2PC metrics table after a traffic run.")
  in
  let json =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the machine-readable outcome or sweep summary to FILE.")
  in
  let trace =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a merged cross-shard Chrome trace of the traffic run: one \
             timeline per shard plus a coordinator timeline with 2PC phase \
             spans, WAL-sync markers and coordinator/participant message \
             flow arrows.  Analyze with $(b,weihl trace analyze).")
  in
  let open_loop =
    Arg.(
      value & flag
      & info [ "open-loop" ]
          ~doc:
            "Drive seeded Poisson arrivals at a fixed offered rate instead \
             of the closed client loop, reporting a windowed time series of \
             throughput, abort causes and latency percentiles.")
  in
  let rate =
    Arg.(
      value & opt float 0.2
      & info [ "rate" ] ~docv:"R"
          ~doc:"Open-loop mean arrivals per tick (Poisson).")
  in
  let sweep =
    Arg.(
      value & opt (list float) []
      & info [ "sweep" ] ~docv:"R1,R2,.."
          ~doc:
            "Run the open-loop driver once per offered rate and print the \
             latency-vs-offered-load knee curve.")
  in
  let zipf =
    Arg.(
      value & opt (some float) None
      & info [ "zipf" ] ~docv:"THETA"
          ~doc:
            "Skew the banking key distribution zipfian with exponent THETA \
             (0 = uniform).")
  in
  let hot =
    Arg.(
      value & opt (some float) None
      & info [ "hot" ] ~docv:"FRAC"
          ~doc:
            "Hotspot key distribution: probability FRAC of hitting one of \
             the first $(b,--hot-keys) accounts.")
  in
  let hot_keys =
    Arg.(
      value & opt int 2
      & info [ "hot-keys" ] ~docv:"K" ~doc:"Size of the hotspot (with --hot).")
  in
  let window =
    Arg.(
      value & opt int 250
      & info [ "window" ] ~docv:"TICKS"
          ~doc:"Open-loop time-series window width.")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Worker domains for shard execution (capped at the shard \
             count).  1 is the deterministic inline mode; results are \
             identical at any value — only wall-clock time changes.")
  in
  let replicas =
    Arg.(
      value & opt int 0
      & info [ "replicas" ] ~docv:"N"
          ~doc:
            "Run a read-replica tier of N replicas over the group: WAL \
             segments ship to each replica on every commit, and after the \
             traffic run a batch of read-only transactions is served from \
             replica snapshots at their initiation timestamps \
             (timestamp-policy protocols; needs $(b,--domains) 1).  The \
             per-replica lag and read counters land in $(b,--json) under \
             $(i,replication).")
  in
  let mcore =
    Arg.(
      value & flag
      & info [ "mcore" ]
          ~doc:
            "Run the wall-clock batched multicore driver instead of the \
             virtual-time simulation: group commit on, a simulated device \
             sync per WAL batch ($(b,--sync-us)), $(b,--jobs) transactions \
             through a $(b,--inflight)-deep window.  Combine with \
             $(b,--domains) to overlap the syncs across shard domains.")
  in
  let jobs =
    Arg.(
      value & opt int 400
      & info [ "jobs" ] ~docv:"N"
          ~doc:"Transactions to run to completion (with --mcore).")
  in
  let inflight =
    Arg.(
      value & opt int 64
      & info [ "inflight" ] ~docv:"N"
          ~doc:"Open-transaction window depth (with --mcore).")
  in
  let sync_us =
    Arg.(
      value & opt int 1000
      & info [ "sync-us" ] ~docv:"US"
          ~doc:"Simulated WAL device sync latency in microseconds (with \
                --mcore).")
  in
  let checkpoint_every =
    Arg.(
      value & opt (some int) None
      & info [ "checkpoint-every" ] ~docv:"COMMITS"
          ~doc:
            "Write a fuzzy checkpoint on each shard every COMMITS commits \
             (jittered per shard so the group never pauses in lockstep), \
             retain the last two, and truncate the WAL behind the older \
             retained one.  Off by default.")
  in
  let archive =
    Arg.(
      value & flag
      & info [ "archive" ]
          ~doc:
            "Keep the truncated WAL prefixes as archived segments instead of \
             discarding them (with --checkpoint-every).")
  in
  Term.(
    const shard_cmd $ shards $ domains $ replicas $ clients $ duration $ seed
    $ protocol $ faults $ schedules $ quick $ verbose $ metrics $ json $ trace
    $ open_loop $ rate $ sweep $ zipf $ hot $ hot_keys $ window $ mcore $ jobs
    $ inflight $ sync_us $ checkpoint_every $ archive)

let replica_term =
  let shards =
    Arg.(
      value & opt int 3
      & info [ "shards" ] ~docv:"N" ~doc:"Number of shards in the group.")
  in
  let replicas =
    Arg.(
      value & opt int 3
      & info [ "replicas" ] ~docv:"N" ~doc:"Replicas per tier.")
  in
  let schedules =
    Arg.(
      value & opt int 100
      & info [ "schedules"; "n" ] ~docv:"N"
          ~doc:"Number of seeded failover schedules.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ]) in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:"Shorten the traffic slices and read batches (smoke runs).")
  in
  let verbose =
    Arg.(
      value & flag & info [ "verbose"; "v" ] ~doc:"Print every schedule result.")
  in
  let json =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the machine-readable drill summary and per-replica lag \
             report to FILE.")
  in
  Term.(
    const replica_cmd $ shards $ replicas $ schedules $ seed $ quick $ verbose
    $ json)

let lint_term =
  let protocol =
    Arg.(
      value & opt (some string) None
      & info [ "protocol"; "p" ] ~docv:"NAME"
          ~doc:
            "Certify one catalog protocol (or one ADT table) instead of \
             everything.")
  in
  let depth =
    Arg.(
      value & opt int 3
      & info [ "depth" ] ~docv:"N"
          ~doc:
            "Exploration bound: table derivation explores N generator steps; \
             protocol probes use committed setups of up to N operations.")
  in
  let json =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the machine-readable certificate report to FILE.")
  in
  let self_test =
    Arg.(
      value & flag
      & info [ "self-test" ]
          ~doc:
            "Run the mutation self-test instead: certify deliberately \
             corrupted tables and protocols and fail unless every corruption \
             is flagged.")
  in
  let budget =
    Arg.(
      value & opt (some int) None
      & info [ "budget" ] ~docv:"N"
          ~doc:
            "Grow each table-derivation exploration past $(b,--depth), up to \
             N generator levels, until the frontier count stabilizes (a \
             level adds no new distinct frontier).  The JSON report's \
             exploration records carry $(b,enumerated), $(b,distinct), \
             $(b,truncated), $(b,depth_used) and $(b,stabilized); a loud \
             warning is printed for every exploration that still had not \
             stabilized.")
  in
  let baseline =
    Arg.(
      value & opt (some file) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "Compare against a committed lint JSON report: exit non-zero if \
             any protocol reports more unsound findings than the snapshot \
             or a strictly higher looseness.")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose"; "v" ]
          ~doc:"Also list loose and unknown entries, not just unsound ones.")
  in
  Term.(
    const lint_cmd $ protocol $ depth $ budget $ json $ baseline $ self_test
    $ verbose)

let synth_term =
  let adt =
    Arg.(
      value & opt (some string) None
      & info [ "adt" ] ~docv:"NAME"
          ~doc:"Synthesize one registry ADT instead of all of them.")
  in
  let depth =
    Arg.(
      value & opt int 3
      & info [ "depth" ] ~docv:"N"
          ~doc:
            "Exploration depth the table is compiled at (budgeted past N \
             until the frontier count stabilizes).  The catalog's \
             $(b,derived_*) protocols ship the depth-3 compilation.")
  in
  let json =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the synthesized tables — exploration stats, result \
             classes, cells, refinements and the full matrix — to FILE.")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose"; "v" ]
          ~doc:"Also print every (op, result)-pair cell of each matrix.")
  in
  Term.(const synth_cmd $ adt $ depth $ json $ verbose)

let cmds =
  [
    Cmd.v
      (Cmd.info "check"
         ~doc:"Classify a history file (well-formedness and atomicity).")
      check_term;
    Cmd.v (Cmd.info "sim" ~doc:"Run a workload simulation.") sim_term;
    Cmd.v
      (Cmd.info "census" ~doc:"Permissiveness census over bounded histories.")
      census_term;
    Cmd.v (Cmd.info "tpc" ~doc:"Run a two-phase commit scenario.") tpc_term;
    Cmd.v
      (Cmd.info "faults"
         ~doc:"Run seeded crash-recovery fault schedules across the protocol \
               catalog; exit non-zero on any divergence.")
      faults_term;
    Cmd.v
      (Cmd.info "shard"
         ~doc:"Drive a sharded transactional runtime: N System shards behind \
               one facade, cross-shard commits via 2PC; optionally sweep \
               seeded crash-recovery fault schedules and exit non-zero on \
               any global-atomicity divergence.")
      shard_term;
    Cmd.v
      (Cmd.info "replica"
         ~doc:
           "Run the read-replica failover drill: seeded schedules of traffic \
            with 2PC faults, lossy WAL shipping, staged replica faults \
            (lag, crash, partition, segment damage) and forced promotions, \
            judged for lost commits, stale replica reads and projection \
            divergence; exit non-zero unless every schedule is clean.  Also \
            emits a per-replica apply-lag report from a deterministic \
            shipping demo.")
      replica_term;
    Cmd.group
      (Cmd.info "trace"
         ~doc:"Inspect exported Chrome traces.")
      [
        Cmd.v
          (Cmd.info "analyze"
             ~doc:
               "Per-committed-transaction critical-path breakdown of an \
                exported trace: lock wait vs WAL sync vs message flight vs \
                2PC coordination vs execution, with per-phase percentiles \
                and the slowest transactions.")
          (let file =
             Arg.(
               required & pos 0 (some file) None & info [] ~docv:"TRACE_FILE")
           in
           let top =
             Arg.(
               value & opt int 5
               & info [ "top" ] ~docv:"K"
                   ~doc:"Number of slowest transactions to list.")
           in
           let json =
             Arg.(
               value & opt (some string) None
               & info [ "json" ] ~docv:"FILE"
                   ~doc:"Write the machine-readable analysis to FILE.")
           in
           Term.(const trace_analyze_cmd $ file $ top $ json));
      ];
    Cmd.v
      (Cmd.info "lint"
         ~doc:"Statically certify every conflict table and protocol grant \
               rule against the sequential specifications; exit non-zero on \
               any unsound entry.")
      lint_term;
    Cmd.v
      (Cmd.info "synth"
         ~doc:"Compile data-dependent lock tables from the sequential \
               specifications: one (operation, result-class) conflict matrix \
               per registry ADT, the tables behind the catalog's derived_* \
               protocols.")
      synth_term;
    Cmd.v
      (Cmd.info "recover"
         ~doc:"Rebuild object state by replaying a history file's committed \
               transactions.")
      recover_term;
    Cmd.v
      (Cmd.info "explore"
         ~doc:"Model-check every schedule of a demonstration scope.")
      explore_term;
  ]

let () =
  let info =
    Cmd.info "weihl" ~version:"1.0.0"
      ~doc:
        "Data-dependent concurrency control and recovery (Weihl, PODC 1983)."
  in
  exit (Cmd.eval' (Cmd.group info cmds))
