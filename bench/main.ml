(* The experiment harness: one experiment per comparative claim in the
   paper (the 1983 extended abstract has no measured evaluation, so
   these tables are the quantitative form of its Sections 4.2.3, 4.3.3
   and 5.1 arguments), plus Bechamel micro-benchmarks of the hot paths.

     dune exec bench/main.exe            # all experiments + micro
     dune exec bench/main.exe -- e1 e3   # a subset
*)

open Core

let section title =
  Fmt.pr "@.======================================================@.";
  Fmt.pr "%s@." title;
  Fmt.pr "======================================================@.@."

(* ------------------------------------------------------------------ *)
(* Shared system builders                                              *)
(* ------------------------------------------------------------------ *)

let build_accounts protocol ids =
  let policy =
    match protocol with
    | `Multiversion -> `Static
    | `Hybrid | `Hybrid_escrow -> `Hybrid
    | `Rw | `Commutativity | `Escrow -> `None_
  in
  let sys = System.create ~policy () in
  let log = System.log sys in
  List.iter
    (fun id ->
      let obj =
        match protocol with
        | `Rw -> Op_locking.rw log id (module Bank_account)
        | `Commutativity ->
          Op_locking.commutativity log id (module Bank_account)
        | `Escrow -> Escrow_account.make log id
        | `Multiversion -> Multiversion.make log id Bank_account.spec
        | `Hybrid -> Hybrid.of_adt log id (module Bank_account)
        | `Hybrid_escrow -> Hybrid_account.make log id
      in
      System.add_object sys obj)
    ids;
  sys

let protocol_name = function
  | `Rw -> "rw-2pl"
  | `Commutativity -> "commutativity"
  | `Escrow -> "escrow (dynamic)"
  | `Multiversion -> "multiversion"
  | `Hybrid -> "hybrid"
  | `Hybrid_escrow -> "hybrid-escrow"

let seed_account sys id amount =
  let t = System.begin_txn sys (Activity.update "seed") in
  (match System.invoke sys t id (Bank_account.deposit amount) with
  | Atomic_object.Granted _ -> ()
  | r -> Fmt.failwith "seeding failed: %a" Atomic_object.pp_invoke_result r);
  System.commit sys t

(* ------------------------------------------------------------------ *)
(* E1 — Section 5.1: concurrent withdrawals on one hot account.        *)
(* ------------------------------------------------------------------ *)

let e1 () =
  section
    "E1  Hot-account withdrawals (Section 5.1)\n\
     throughput and blocking vs. initial balance headroom";
  let headrooms = [ 0; 40; 200; 2000 ] in
  Fmt.pr "%-9s %-18s %9s %8s %8s %8s %11s@." "headroom" "protocol" "committed"
    "waits" "aborts" "gave-up" "txn/1000t";
  List.iter
    (fun headroom ->
      List.iter
        (fun protocol ->
          let sys = build_accounts protocol [ Workload.hot_account ] in
          if headroom > 0 then seed_account sys Workload.hot_account headroom;
          let w = Workload.hot_withdrawals ~withdraw_max:5 () in
          let config =
            {
              Driver.default_config with
              clients = 16;
              duration = 3000;
              seed = 11;
              max_restarts = 6;
            }
          in
          let o = Driver.run ~config sys w in
          Fmt.pr "%-9d %-18s %9d %8d %8d %8d %11.1f@." headroom
            (protocol_name protocol) o.Driver.committed o.Driver.waits
            (o.Driver.aborted_deadlock + o.Driver.aborted_refused)
            o.Driver.gave_up (Driver.throughput o))
        [ `Rw; `Commutativity; `Escrow ];
      Fmt.pr "@.")
    headrooms;
  Fmt.pr
    "Shape: escrow sustains concurrent withdrawals (fewer waits, higher@.\
     throughput) once headroom covers concurrent requests; the locking@.\
     baselines serialize withdrawals regardless of balance.@."

(* ------------------------------------------------------------------ *)
(* E2 — Figure 5-1: census of queue interleavings.                     *)
(* ------------------------------------------------------------------ *)

let e2 () =
  section
    "E2  Queue interleaving census (Figure 5-1)\n\
     dynamic atomicity vs. the scheduler model vs. locking";
  let xq = Object_id.v "q" in
  let env = Spec_env.of_list [ (xq, Fifo_queue.spec) ] in
  let a = Activity.update "a"
  and b = Activity.update "b"
  and c = Activity.update "c" in
  (* Enumerate interleavings of a's two enqueues with b's two enqueues
     (invoke+respond kept adjacent), over value assignments from
     {1,2}. *)
  let interleavings =
    let rec choose k n start =
      if k = 0 then [ [] ]
      else if start >= n then []
      else
        List.map (fun rest -> start :: rest) (choose (k - 1) n (start + 1))
        @ choose k n (start + 1)
    in
    choose 2 4 0
  in
  let assignments =
    List.concat_map
      (fun v1 ->
        List.concat_map
          (fun v2 ->
            List.concat_map
              (fun v3 -> List.map (fun v4 -> (v1, v2, v3, v4)) [ 1; 2 ])
              [ 1; 2 ])
          [ 1; 2 ])
      [ 1; 2 ]
  in
  let total = ref 0 in
  let da_possible = ref 0 in
  let scheduler_ok = ref 0 in
  let da_only = ref 0 in
  let sched_only = ref 0 in
  let locking_ok = ref 0 in
  let truly_interleaved = ref 0 in
  List.iter
    (fun a_slots ->
      List.iter
        (fun (va1, va2, vb1, vb2) ->
          incr total;
          let a_vals = [ va1; va2 ] and b_vals = [ vb1; vb2 ] in
          let rec build slot a_vals b_vals acc arrival =
            if slot = 4 then (List.rev acc, List.rev arrival)
            else if List.mem slot a_slots then
              match a_vals with
              | v :: rest ->
                build (slot + 1) rest b_vals
                  (Event.respond a xq Value.ok
                  :: Event.invoke a xq (Fifo_queue.enqueue v)
                  :: acc)
                  (v :: arrival)
              | [] -> assert false
            else
              match b_vals with
              | v :: rest ->
                build (slot + 1) a_vals rest
                  (Event.respond b xq Value.ok
                  :: Event.invoke b xq (Fifo_queue.enqueue v)
                  :: acc)
                  (v :: arrival)
              | [] -> assert false
          in
          let enq_events, arrival = build 0 a_vals b_vals [] [] in
          let with_dequeues results =
            History.of_list
              (enq_events
              @ [ Event.commit a xq; Event.commit b xq ]
              @ List.concat_map
                  (fun v ->
                    [
                      Event.invoke c xq Fifo_queue.dequeue;
                      Event.respond c xq (Value.Int v);
                    ])
                  results
              @ [ Event.commit c xq ])
          in
          (* Scheduler model: the store executes operations in arrival
             order, so the consumer receives exactly [arrival]. *)
          let sched = Atomicity.atomic env (with_dequeues arrival) in
          if sched then incr scheduler_ok;
          (* Dynamic atomicity: does SOME dequeue outcome make the
             history dynamic atomic?  (The object must be right in
             every serialization order consistent with precedes, not
             just in the storage order the scheduler happened to
             produce.) *)
          let candidates = [ a_vals @ b_vals; b_vals @ a_vals; arrival ] in
          let da =
            List.exists
              (fun results ->
                Atomicity.dynamic_atomic env (with_dequeues results))
              candidates
          in
          if da then incr da_possible;
          if da && not sched then incr da_only;
          if sched && not da then incr sched_only;
          (* Commutativity locking admits the interleaving only when
             every interleaved pair of operations commutes. *)
          let interleaved = a_slots <> [ 0; 1 ] && a_slots <> [ 2; 3 ] in
          if interleaved then incr truly_interleaved;
          let lock_ok =
            (not interleaved)
            || List.for_all
                 (fun va ->
                   List.for_all
                     (fun vb ->
                       Fifo_queue.commutes (Fifo_queue.enqueue va)
                         (Fifo_queue.enqueue vb))
                     b_vals)
                 a_vals
          in
          if lock_ok && da then incr locking_ok)
        assignments)
    interleavings;
  Fmt.pr "interleaving/value cases examined:                  %4d@." !total;
  Fmt.pr "  (genuinely interleaved: %d)@.@." !truly_interleaved;
  Fmt.pr "dequeue outcome certain in EVERY serialization@.";
  Fmt.pr "  order (a dynamic-atomic object can serve it):     %4d@."
    !da_possible;
  Fmt.pr "admitted by commutativity locking (non-commuting@.";
  Fmt.pr "  enqueues must serialize):                         %4d@."
    !locking_ok;
  Fmt.pr "scheduler-model storage order happens to be@.";
  Fmt.pr "  serializable in some order:                       %4d@."
    !scheduler_ok;
  Fmt.pr "@.cases only dynamic atomicity handles correctly@.";
  Fmt.pr "  (scheduler outcome unserializable — the paper's@.";
  Fmt.pr "  1,1,2,2 is one of them):                          %4d@." !da_only;
  Fmt.pr "cases where the scheduler's one-order guess is@.";
  Fmt.pr "  serializable but not order-invariant, so a@.";
  Fmt.pr "  correct local object must refuse or wait:         %4d@."
    !sched_only;
  Fmt.pr
    "@.Shape: commutativity locking admits strictly fewer interleavings@.\
     than dynamic atomicity (%d < %d); the scheduler model bakes one@.\
     serialization into storage order and is wrong in %d cases.@."
    !locking_ok !da_possible (!total - !scheduler_ok)

(* ------------------------------------------------------------------ *)
(* E3 — Section 4.2.3: long read-only audits under each protocol.      *)
(* ------------------------------------------------------------------ *)

let e3 () =
  section
    "E3  Long read-only audits (Section 4.2.3)\n\
     audit latency and interference vs. audit length";
  Fmt.pr "%-9s %-18s %7s %10s %10s %9s %9s@." "accounts" "protocol" "audits"
    "audit-lat" "ro-waits" "aborts" "thruput";
  List.iter
    (fun accounts ->
      let ids = Workload.account_ids accounts in
      List.iter
        (fun protocol ->
          let sys = build_accounts protocol ids in
          let w = Workload.banking ~accounts ~audit_fraction:0.25 () in
          let config =
            {
              Driver.default_config with
              clients = 12;
              duration = 3000;
              seed = 23;
              max_restarts = 6;
            }
          in
          let o = Driver.run ~config sys w in
          Fmt.pr "%-9d %-18s %7d %10.1f %10d %9d %9.1f@." accounts
            (protocol_name protocol) o.Driver.committed_read_only
            (Weihl_obs.Metrics.Histogram.mean o.Driver.read_only_latencies)
            o.Driver.waits_read_only
            (o.Driver.aborted_deadlock + o.Driver.aborted_refused)
            (Driver.throughput o))
        [ `Rw; `Commutativity; `Multiversion; `Hybrid; `Hybrid_escrow ];
      Fmt.pr "@.")
    [ 4; 8; 16 ];
  Fmt.pr
    "Shape: audit latency explodes with audit length under locking@.\
     (audits block behind updates and vice versa); multi-version and@.\
     hybrid audits never wait (ro-waits = 0) and stay flat.@."

(* ------------------------------------------------------------------ *)
(* E4 — Section 4.2.3: timestamp skew and static atomicity.            *)
(* ------------------------------------------------------------------ *)

let e4 () =
  section
    "E4  Update aborts vs. timestamp skew (Section 4.2.3)\n\
     static (Reed) aborts late-timestamped writers; locking just waits";
  Fmt.pr "%-6s %-18s %9s %9s %9s %11s@." "skew" "protocol" "committed"
    "refused" "waits" "txn/1000t";
  let config =
    {
      Driver.default_config with
      clients = 12;
      duration = 2500;
      seed = 31;
      max_restarts = 6;
    }
  in
  let skews = [ 0; 2; 4; 8; 16 ] in
  List.iter
    (fun skew ->
      let sys = System.create ~policy:`Static () in
      let log = System.log sys in
      let rng = Rng.create (1000 + skew) in
      let counter = ref 0 in
      System.set_ts_source sys (fun () ->
          incr counter;
          (* A transaction starting now may draw a timestamp up to
             [skew] starts in the past: unsynchronized clocks.  The low
             bits keep timestamps unique. *)
          let logical = max 0 (!counter - Rng.int rng (skew + 1)) in
          Timestamp.v ((logical * 4096) + !counter));
      List.iter
        (fun id ->
          System.add_object sys (Multiversion.make log id Bank_account.spec))
        (Workload.account_ids 4);
      let w = Workload.banking ~accounts:4 ~audit_fraction:0.1 () in
      let o = Driver.run ~config sys w in
      Fmt.pr "%-6d %-18s %9d %9d %9d %11.1f@." skew "multiversion"
        o.Driver.committed o.Driver.aborted_refused o.Driver.waits
        (Driver.throughput o);
      let sys2 = build_accounts `Commutativity (Workload.account_ids 4) in
      let o2 = Driver.run ~config sys2 w in
      Fmt.pr "%-6d %-18s %9d %9d %9d %11.1f@." skew "commutativity"
        o2.Driver.committed o2.Driver.aborted_refused o2.Driver.waits
        (Driver.throughput o2);
      Fmt.pr "@.")
    skews;
  Fmt.pr
    "Shape: refused-counts (Reed's timestamp conflicts) grow with skew@.\
     while the locking protocol's profile is flat in skew.@."

(* ------------------------------------------------------------------ *)
(* E5 — permissiveness census over bounded histories.                  *)
(* ------------------------------------------------------------------ *)

let e5 () =
  section
    "E5  Permissiveness census (Sections 4.1-4.3)\n\
     bounded two-activity set histories, classified by every checker";
  let xs = Object_id.v "s" in
  let env = Spec_env.of_list [ (xs, Intset.spec) ] in
  let a = Activity.update "a" and b = Activity.update "b" in
  let op_choices =
    [
      (Intset.insert 1, [ Value.ok ]);
      (Intset.member 1, [ Value.Bool true; Value.Bool false ]);
      (Intset.delete 1, [ Value.ok ]);
    ]
  in
  let sessions act ts (op, res) =
    [
      Event.initiate act xs (Timestamp.v ts);
      Event.invoke act xs op;
      Event.respond act xs res;
      Event.commit act xs;
    ]
  in
  let rec interleave u v =
    match (u, v) with
    | [], v -> [ v ]
    | u, [] -> [ u ]
    | x :: u', y :: v' ->
      List.map (fun rest -> x :: rest) (interleave u' v)
      @ List.map (fun rest -> y :: rest) (interleave u v')
  in
  let counts = Hashtbl.create 16 in
  let bump k =
    Hashtbl.replace counts k
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  in
  let total = ref 0 in
  List.iter
    (fun (opa, resa_choices) ->
      List.iter
        (fun (opb, resb_choices) ->
          List.iter
            (fun resa ->
              List.iter
                (fun resb ->
                  List.iter
                    (fun (tsa, tsb) ->
                      let sa = sessions a tsa (opa, resa) in
                      let sb = sessions b tsb (opb, resb) in
                      List.iter
                        (fun events ->
                          let h = History.of_list events in
                          if Wellformed.is_well_formed Wellformed.Static h
                          then begin
                            incr total;
                            let at = Atomicity.atomic env h in
                            let dy = Atomicity.dynamic_atomic env h in
                            let st = Atomicity.static_atomic env h in
                            if at then bump `Atomic;
                            if dy then bump `Dynamic;
                            if st then bump `Static;
                            if dy && st then bump `Both;
                            if dy && not st then bump `Dyn_only;
                            if st && not dy then bump `Sta_only;
                            if (dy || st) && not at then bump `Unsound
                          end)
                        (interleave sa sb))
                    [ (1, 2); (2, 1) ])
                resb_choices)
            resa_choices)
        op_choices)
    op_choices;
  let get k = Option.value ~default:0 (Hashtbl.find_opt counts k) in
  Fmt.pr "well-formed histories:        %5d@." !total;
  Fmt.pr "  atomic:                     %5d@." (get `Atomic);
  Fmt.pr "  dynamic atomic:             %5d@." (get `Dynamic);
  Fmt.pr "  static atomic:              %5d@." (get `Static);
  Fmt.pr "  both:                       %5d@." (get `Both);
  Fmt.pr "  dynamic only:               %5d@." (get `Dyn_only);
  Fmt.pr "  static only:                %5d@." (get `Sta_only);
  Fmt.pr "  local-but-not-atomic:       %5d   (must be 0: Theorems 1 and 4)@."
    (get `Unsound);
  Fmt.pr
    "@.Shape: both properties are strict subsets of atomic and neither@.\
     contains the other (optimality is weak, Section 4.2.3).@."

(* ------------------------------------------------------------------ *)
(* E6 — Section 4.3.3: hybrid audits vs. non-atomic audits.            *)
(* ------------------------------------------------------------------ *)

let e6 () =
  section
    "E6  The audit problem (Section 4.3.3)\n\
     consistency of audit totals: hybrid vs. non-atomic audits";
  let accounts = 4 in
  let ids = Workload.account_ids accounts in
  let initial_total = 1000 in
  let sys = build_accounts `Hybrid ids in
  List.iter (fun id -> seed_account sys id (initial_total / accounts)) ids;
  let rng = Rng.create 99 in
  let audits = 300 in
  let fresh_name p = Fmt.str "%s%d" p (Rng.int rng 1_000_000_000) in
  (* Scan all accounts; [interrupt] fires after the first read and runs
     a full transfer from the last account into the first.  The atomic
     audit is one read-only transaction; the non-atomic audit uses one
     transaction per account (Lamport's problem case). *)
  let run_transfer () =
    let src = List.nth ids (accounts - 1) and dst = List.nth ids 0 in
    let amount = 1 + Rng.int rng 20 in
    let t = System.begin_txn sys (Activity.update (fresh_name "t")) in
    match System.invoke sys t src (Bank_account.withdraw amount) with
    | Atomic_object.Granted v when Value.equal v Value.ok -> (
      match System.invoke sys t dst (Bank_account.deposit amount) with
      | Atomic_object.Granted _ -> System.commit sys t
      | _ -> System.abort sys t)
    | Atomic_object.Granted _ -> System.commit sys t
    | _ -> System.abort sys t
  in
  let scan ~atomic =
    if atomic then begin
      let r = System.begin_txn sys (Activity.read_only (fresh_name "r")) in
      let total = ref 0 in
      List.iteri
        (fun i id ->
          (match System.invoke sys r id Bank_account.balance with
          | Atomic_object.Granted (Value.Int n) -> total := !total + n
          | _ -> ());
          if i = 0 then run_transfer ())
        ids;
      System.commit sys r;
      !total
    end
    else begin
      let total = ref 0 in
      List.iteri
        (fun i id ->
          let r = System.begin_txn sys (Activity.read_only (fresh_name "s")) in
          (match System.invoke sys r id Bank_account.balance with
          | Atomic_object.Granted (Value.Int n) -> total := !total + n
          | _ -> ());
          System.commit sys r;
          if i = 0 then run_transfer ())
        ids;
      !total
    end
  in
  let atomic_violations = ref 0 in
  let dirty_violations = ref 0 in
  for _ = 1 to audits do
    if scan ~atomic:true <> initial_total then incr atomic_violations;
    if scan ~atomic:false <> initial_total then incr dirty_violations
  done;
  Fmt.pr "audits run per style:                 %d@." audits;
  Fmt.pr "inconsistent totals, hybrid audit:    %d   (atomicity: must be 0)@."
    !atomic_violations;
  Fmt.pr "inconsistent totals, per-account txn: %d   (Lamport's problem)@."
    !dirty_violations;
  Fmt.pr
    "@.Shape: the hybrid read-only audit always sees a serializable@.\
     snapshot; splitting the audit across transactions does not.@."

(* ------------------------------------------------------------------ *)
(* E7 — Section 1: non-determinism buys concurrency.                   *)
(* ------------------------------------------------------------------ *)

let e7 () =
  section
    "E7  Non-determinism buys concurrency (Section 1)\n\
     FIFO queue vs semiqueue under the same producer/consumer load";
  Fmt.pr "%-34s %9s %8s %8s %11s@." "object" "committed" "waits" "aborts"
    "txn/1000t";
  let run name make_obj workload obj_id =
    let sys = System.create () in
    System.add_object sys (make_obj (System.log sys) obj_id);
    let config =
      {
        Driver.default_config with
        clients = 6;
        duration = 400;
        seed = 41;
        max_restarts = 6;
      }
    in
    let o = Driver.run ~config sys workload in
    Fmt.pr "%-34s %9d %8d %8d %11.1f@." name o.Driver.committed o.Driver.waits
      (o.Driver.aborted_deadlock + o.Driver.aborted_refused)
      (Driver.throughput o)
  in
  run "FIFO queue (commutativity lock)"
    (fun log id -> Op_locking.commutativity log id (module Fifo_queue))
    (Workload.queue_producers_consumers ())
    Workload.queue_object;
  run "FIFO queue (dynamic atomic)" Da_queue.make
    (Workload.queue_producers_consumers ())
    Workload.queue_object;
  run "semiqueue (commutativity lock)"
    (fun log id -> Op_locking.commutativity log id (module Semiqueue))
    (Workload.semiqueue_producers_consumers ())
    Workload.semiqueue_object;
  run "semiqueue (dynamic atomic)" Da_semiqueue.make
    (Workload.semiqueue_producers_consumers ())
    Workload.semiqueue_object;
  Fmt.pr
    "@.Shape: with a deterministic FIFO specification even the optimal@.\
     protocol must serialize dequeuers; weakening the specification to@.\
     the non-deterministic semiqueue lets the dynamic-atomic object run@.\
     them in parallel - the Section 1 argument for non-deterministic@.\
     specifications, measured.@."

(* ------------------------------------------------------------------ *)
(* A1 — Ablation: intentions-list vs before-image recovery.            *)
(* ------------------------------------------------------------------ *)

let a1 () =
  section
    "A1  Recovery ablation: intentions lists vs before-images\n\
     commit/abort cost per transaction size (rw-2PL discipline)";
  (* Keep total operation count roughly constant across sizes: the
     intentions view replays O(ops-so-far) per operation. *)
  let rounds_for ops = max 50 (20_000 / (ops * ops)) in
  let time rounds f =
    let t0 = Sys.time () in
    f ();
    (Sys.time () -. t0) *. 1e9 /. float_of_int rounds
  in
  let xs = Object_id.v "s" in
  let run_rounds make_obj ops_per_txn rounds finish =
    let sys = System.create () in
    System.add_object sys (make_obj (System.log sys) xs);
    fun () ->
      for i = 1 to rounds do
        let t = System.begin_txn sys (Activity.update (Fmt.str "t%d" i)) in
        for k = 1 to ops_per_txn do
          ignore (System.invoke sys t xs (Intset.insert ((i + k) mod 64)))
        done;
        match finish with
        | `Commit -> System.commit sys t
        | `Abort -> System.abort sys t
      done
  in
  Fmt.pr "%-8s %-22s %14s %14s@." "ops/txn" "recovery" "commit ns/txn"
    "abort ns/txn";
  List.iter
    (fun ops_per_txn ->
      List.iter
        (fun (name, make_obj) ->
          let rounds = rounds_for ops_per_txn in
          let commit_ns =
            time rounds (run_rounds make_obj ops_per_txn rounds `Commit)
          in
          let abort_ns =
            time rounds (run_rounds make_obj ops_per_txn rounds `Abort)
          in
          Fmt.pr "%-8d %-22s %14.0f %14.0f@." ops_per_txn name commit_ns
            abort_ns)
        [
          ("intentions (replay)",
           fun log id -> Op_locking.rw log id (module Intset));
          ("before-image (undo)",
           fun log id -> Rw_undo.make log id (module Intset));
        ];
      Fmt.pr "@.")
    [ 1; 8; 64 ];
  Fmt.pr
    "Shape: the intentions object re-replays its buffer on every access,@.\
     so costs grow quadratically with transaction size; the before-image@.\
     object pays one snapshot per writer and stays near-linear.  The@.\
     Section 5 point: the choice is invisible at the atomicity@.\
     interface - both objects generate identical dynamic-atomic@.\
     histories (test/test_rw_undo.ml).@."

(* ------------------------------------------------------------------ *)
(* A2 — Ablation: result-aware set vs its locking baselines.           *)
(* ------------------------------------------------------------------ *)

let a2 () =
  section
    "A2  Set protocol ablation: result-aware conflicts vs locking\n\
     (same set workload, three protocols)";
  Fmt.pr "%-18s %9s %8s %8s %11s@." "protocol" "committed" "waits" "aborts"
    "txn/1000t";
  List.iter
    (fun (name, make_obj) ->
      let sys = System.create () in
      System.add_object sys (make_obj (System.log sys) Workload.set_object);
      let w = Workload.set_ops ~keys:8 () in
      let config =
        {
          Driver.default_config with
          clients = 10;
          duration = 1200;
          seed = 17;
          max_restarts = 6;
        }
      in
      let o = Driver.run ~config sys w in
      Fmt.pr "%-18s %9d %8d %8d %11.1f@." name o.Driver.committed
        o.Driver.waits
        (o.Driver.aborted_deadlock + o.Driver.aborted_refused)
        (Driver.throughput o))
    [
      ("rw-2pl", fun log id -> Op_locking.rw log id (module Intset));
      ("commutativity",
       fun log id -> Op_locking.commutativity log id (module Intset));
      ("da-set (results)", Da_set.make);
    ];
  Fmt.pr
    "@.Shape: per-element, result-aware conflicts admit strictly more@.\
     interleavings than whole-object read/write locks, and more than@.\
     state-independent commutativity where results disambiguate@.\
     (member(true) vs insert).@."

(* ------------------------------------------------------------------ *)
(* A3 — Ablation: the queue's serialization-order enumeration cap.     *)
(* ------------------------------------------------------------------ *)

let a3 () =
  section
    "A3  Queue ablation: extension-enumeration cap\n\
     (producers/consumers; the cap trades work for conservatism)";
  Fmt.pr "%-8s %9s %8s %8s %8s %11s@." "cap" "committed" "waits" "aborts"
    "gave-up" "txn/1000t";
  List.iter
    (fun cap ->
      let sys = System.create () in
      System.add_object sys
        (Da_queue.make ~max_extensions:cap (System.log sys)
           Workload.queue_object);
      let w = Workload.queue_producers_consumers () in
      let config =
        {
          Driver.default_config with
          clients = 6;
          duration = 400;
          seed = 29;
          max_restarts = 6;
        }
      in
      let o = Driver.run ~config sys w in
      Fmt.pr "%-8d %9d %8d %8d %8d %11.1f@." cap o.Driver.committed
        o.Driver.waits
        (o.Driver.aborted_deadlock + o.Driver.aborted_refused)
        o.Driver.gave_up (Driver.throughput o))
    [ 1; 16; 500 ];
  Fmt.pr
    "@.Shape: a tiny cap degrades to waiting on every active enqueuer;@.\
     a moderate cap recovers nearly all admissible concurrency.@."

(* ------------------------------------------------------------------ *)
(* A4 — Ablation: the generic DA oracle vs the hand-built escrow.      *)
(* ------------------------------------------------------------------ *)

let a4 () =
  section
    "A4  Generic dynamic-atomicity oracle vs hand-built escrow\n\
     (same hot-account workload; the oracle quantifies over orders)";
  Fmt.pr "%-22s %9s %8s %8s %11s %12s@." "object" "committed" "waits"
    "aborts" "txn/1000t" "wall ms";
  List.iter
    (fun (name, make_obj) ->
      let sys = System.create () in
      System.add_object sys (make_obj (System.log sys) Workload.hot_account);
      let t = System.begin_txn sys (Activity.update "seed") in
      ignore (System.invoke sys t Workload.hot_account (Bank_account.deposit 100));
      System.commit sys t;
      let w = Workload.hot_withdrawals ~withdraw_max:5 () in
      let config =
        {
          Driver.default_config with
          clients = 4;
          duration = 400;
          seed = 37;
          max_restarts = 6;
        }
      in
      let t0 = Sys.time () in
      let o = Driver.run ~config sys w in
      let wall = (Sys.time () -. t0) *. 1e3 in
      Fmt.pr "%-22s %9d %8d %8d %11.1f %12.1f@." name o.Driver.committed
        o.Driver.waits
        (o.Driver.aborted_deadlock + o.Driver.aborted_refused)
        (Driver.throughput o) wall)
    [
      ("escrow (hand-built)", Escrow_account.make);
      ("da-generic (oracle)",
       fun log id -> Da_generic.make log id Bank_account.spec);
    ];
  Fmt.pr
    "@.Shape: the oracle recovers the same concurrency class (it@.\
     executes the definition) at a constant-factor cost here and an@.\
     exponential cost in the number of concurrent transactions in@.\
     general; slightly more conservative where escrow's algebra@.\
     resolves ambiguity the order-enumeration refuses.  Deriving@.\
     per-type protocols - the paper's program - is what makes the@.\
     property practical.@."

(* ------------------------------------------------------------------ *)
(* B0 — Bechamel micro-benchmarks.                                     *)
(* ------------------------------------------------------------------ *)

let b0 () =
  section "B0  Micro-benchmarks (Bechamel)";
  let open Bechamel in
  let open Toolkit in
  let xs = Object_id.v "s" in
  let env = Spec_env.of_list [ (xs, Intset.spec) ] in
  let h41 =
    let a = Activity.update "a"
    and b = Activity.update "b"
    and c = Activity.update "c" in
    History.of_list
      [
        Event.invoke a xs (Intset.member 2);
        Event.invoke b xs (Intset.insert 3);
        Event.respond b xs Value.ok;
        Event.respond a xs (Value.Bool false);
        Event.invoke c xs (Intset.member 3);
        Event.commit b xs;
        Event.respond c xs (Value.Bool true);
        Event.commit a xs;
        Event.commit c xs;
      ]
  in
  let escrow_round () =
    let sys = System.create () in
    System.add_object sys (Escrow_account.make (System.log sys) xs);
    let t = System.begin_txn sys (Activity.update "a") in
    ignore (System.invoke sys t xs (Bank_account.deposit 10));
    ignore (System.invoke sys t xs (Bank_account.withdraw 4));
    System.commit sys t
  in
  let multiversion_round () =
    let sys = System.create ~policy:`Static () in
    System.add_object sys (Multiversion.make (System.log sys) xs Intset.spec);
    let t = System.begin_txn sys (Activity.update "a") in
    ignore (System.invoke sys t xs (Intset.insert 1));
    ignore (System.invoke sys t xs (Intset.member 1));
    System.commit sys t
  in
  (* Same round with a do-nothing sink installed: the difference to the
     plain round is the full cost of event construction + dispatch; the
     plain round shows the uninstrumented path costs only dead
     branches. *)
  let escrow_round_probed () =
    let sys = System.create () in
    System.add_object sys (Escrow_account.make (System.log sys) xs);
    System.set_probe sys ~now:(fun () -> 0.)
      { Obs.Probe.emit = (fun ~time:_ _ -> ()) };
    let t = System.begin_txn sys (Activity.update "a") in
    ignore (System.invoke sys t xs (Bank_account.deposit 10));
    ignore (System.invoke sys t xs (Bank_account.withdraw 4));
    System.commit sys t
  in
  let tests =
    Test.make_grouped ~name:"weihl83" ~fmt:"%s %s"
      [
        Test.make ~name:"checker: atomic (sec 4.1 history)"
          (Staged.stage (fun () -> ignore (Atomicity.atomic env h41)));
        Test.make ~name:"checker: dynamic_atomic (sec 4.1 history)"
          (Staged.stage (fun () -> ignore (Atomicity.dynamic_atomic env h41)));
        Test.make ~name:"protocol: escrow deposit+withdraw+commit"
          (Staged.stage escrow_round);
        Test.make ~name:"protocol: escrow round, null probe sink"
          (Staged.stage escrow_round_probed);
        Test.make ~name:"protocol: multiversion insert+member+commit"
          (Staged.stage multiversion_round);
        Test.make ~name:"model: precedes of 9-event history"
          (Staged.stage (fun () -> ignore (History.precedes h41)));
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 100) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Fmt.pr "%-55s %12.1f ns/run@." name est
      | _ -> Fmt.pr "%-55s (no estimate)@." name)
    results

(* ------------------------------------------------------------------ *)
(* O1 — Observability demonstration: recorder over the hot workload.   *)
(* ------------------------------------------------------------------ *)

let o1 () =
  section "O1  Instrumented hot-spot run (metrics + contention report)";
  let sys = System.create () in
  System.add_object sys
    (Escrow_account.make (System.log sys) Workload.hot_account);
  let t = System.begin_txn sys (Activity.update "seed") in
  ignore (System.invoke sys t Workload.hot_account (Bank_account.deposit 200));
  System.commit sys t;
  let w = Workload.hot_withdrawals () in
  let config =
    { Driver.default_config with clients = 8; duration = 1000; seed = 7 }
  in
  let rec_ = Obs.Recorder.create () in
  let o = Driver.run ~config ~probe:(Obs.Recorder.sink rec_) sys w in
  Fmt.pr "%a@.@.%s@." Driver.pp_outcome o (Obs.Recorder.report rec_)

(* ------------------------------------------------------------------ *)
(* J0 — machine-readable benchmark mode:  -- --json FILE               *)
(*                                                                     *)
(* Emits a JSON document with three sections: history-operation        *)
(* micro-benchmarks (indexed implementation vs the naive list-scan     *)
(* reference), a growing-history serializability check, and            *)
(* end-to-end driver runs (run + history-analysis wall time).  The     *)
(* committed BENCH_<n>.json files follow this schema; pass             *)
(* [--baseline FILE] to embed a previous run under "seed_baseline".    *)
(* ------------------------------------------------------------------ *)

module J = Obs.Json

let time_per ~reps f =
  let t0 = Sys.time () in
  for _ = 1 to reps do
    ignore (Sys.opaque_identity (f ()))
  done;
  (Sys.time () -. t0) *. 1e9 /. float_of_int reps

let wall_ms f =
  let t0 = Sys.time () in
  let v = f () in
  (v, (Sys.time () -. t0) *. 1e3)

(* Staggered-lifespan synthetic history: activity [i] performs
   [ops_per] invoke/respond pairs starting at virtual tick
   [i * (ops_per / 2 + 1)], then commits, so lifespans overlap and the
   committed set grows steadily — the shape that stresses [perm] and
   [precedes]. *)
let synthetic_history ~activities:na ~objects:nx ~ops_per =
  let acts = Array.init na (fun i -> Activity.update (Fmt.str "a%d" i)) in
  let objs = Array.init nx (fun i -> Object_id.v (Fmt.str "o%d" i)) in
  let groups = ref [] in
  for i = 0 to na - 1 do
    let start = i * ((ops_per / 2) + 1) in
    for k = 0 to ops_per - 1 do
      let x = objs.((i + k) mod nx) in
      groups :=
        ( start + k,
          i,
          [
            Event.invoke acts.(i) x (Intset.insert ((i + k) mod 7));
            Event.respond acts.(i) x Value.ok;
          ] )
        :: !groups
    done;
    groups :=
      (start + ops_per, i, [ Event.commit acts.(i) objs.(i mod nx) ])
      :: !groups
  done;
  let sorted =
    List.sort
      (fun (t, i, _) (t', i', _) ->
        match Int.compare t t' with 0 -> Int.compare i i' | c -> c)
      !groups
  in
  History.of_list (List.concat_map (fun (_, _, es) -> es) sorted)

(* The naive arm is [History.Reference] — the seed's list-scan
   implementations, retained in the library as the equivalence
   oracle — timed against the indexed versions. *)
module Naive = History.Reference

let history_ops_section ~quick =
  let na, nx, ops_per = if quick then (12, 4, 10) else (48, 12, 42) in
  let h = synthetic_history ~activities:na ~objects:nx ~ops_per in
  let n = History.length h in
  let acts = History.activities h in
  let objs = History.objects h in
  let reps_idx = if quick then 20 else 100 in
  let reps_naive = if quick then 4 else 10 in
  let op name indexed naive =
    let indexed_ns = time_per ~reps:reps_idx indexed in
    let naive_ns = time_per ~reps:reps_naive naive in
    J.Obj
      [
        ("name", J.Str name);
        ("indexed_ns", J.Num indexed_ns);
        ("naive_ns", J.Num naive_ns);
        ( "speedup",
          J.Num (if indexed_ns > 0. then naive_ns /. indexed_ns else 0.) );
      ]
  in
  let ops =
    [
      op "project_object"
        (fun () ->
          List.fold_left
            (fun acc x -> acc + History.length (History.project_object x h))
            0 objs)
        (fun () ->
          List.fold_left
            (fun acc x -> acc + History.length (Naive.project_object x h))
            0 objs);
      op "project_activity"
        (fun () ->
          List.fold_left
            (fun acc a -> acc + History.length (History.project_activity a h))
            0 acts)
        (fun () ->
          List.fold_left
            (fun acc a -> acc + History.length (Naive.project_activity a h))
            0 acts);
      op "activities"
        (fun () -> List.length (History.activities h))
        (fun () -> List.length (Naive.activities h));
      op "perm"
        (fun () -> History.length (History.perm h))
        (fun () -> History.length (Naive.perm h));
      op "precedes"
        (fun () -> List.length (History.precedes h))
        (fun () -> List.length (Naive.precedes h));
    ]
  in
  J.Obj
    [
      ("events", J.Num (float_of_int n));
      ("activities", J.Num (float_of_int na));
      ("objects", J.Num (float_of_int nx));
      ("query_reps", J.Num (float_of_int reps_idx));
      ("naive_reps", J.Num (float_of_int reps_naive));
      ("ops", J.List ops);
    ]

(* A well-formed single-object history whose responses are consistent
   with arrival order, grown event by event; each prefix is re-checked
   for serializability of its committed projection. *)
let serializability_events ~activities:na ~ops_per =
  let xs = Object_id.v "s" in
  let acts = Array.init na (fun i -> Activity.update (Fmt.str "a%d" i)) in
  let groups = ref [] in
  for i = 0 to na - 1 do
    let start = i * ((ops_per / 2) + 1) in
    for k = 0 to ops_per - 1 do
      groups := (start + k, i, `Op k) :: !groups
    done;
    groups := (start + ops_per, i, `Commit) :: !groups
  done;
  let sorted =
    List.sort
      (fun (t, i, _) (t', i', _) ->
        match Int.compare t t' with 0 -> Int.compare i i' | c -> c)
      !groups
  in
  let frontier = ref (Seq_spec.start Intset.spec) in
  let events =
    List.concat_map
      (fun (_, i, what) ->
        match what with
        | `Commit -> [ Event.commit acts.(i) xs ]
        | `Op k ->
          let op =
            if k mod 2 = 0 then Intset.insert ((i + k) mod 3)
            else Intset.member ((i + k) mod 3)
          in
          let res, f' =
            match Seq_spec.outcomes !frontier op with
            | (res, f') :: _ -> (res, f')
            | [] -> assert false
          in
          frontier := f';
          [ Event.invoke acts.(i) xs op; Event.respond acts.(i) xs res ])
      sorted
  in
  (Spec_env.of_list [ (xs, Intset.spec) ], events)

(* A contended variant: the first two activities must serialize in
   reverse arrival order (an inserter commits, then an auditor observes
   member = false, so the auditor belongs BEFORE the inserter), followed
   by [extras] arrival-order-consistent activities.  A search that
   extends the serial prefix in arrival order dead-ends under every
   subset of the extras before it reorders the head pair, so the
   workload exercises the rejected-frontier memo; the incremental
   checker re-validates its cached witness in one linear pass. *)
let contended_serializability_events ~extras =
  let xs = Object_id.v "s" in
  let b = Activity.update "b-insert" in
  let c = Activity.update "c-audit" in
  let head =
    [
      Event.invoke b xs (Intset.insert 99);
      Event.respond b xs Value.ok;
      Event.commit b xs;
      Event.invoke c xs (Intset.member 99);
      Event.respond c xs (Value.Bool false);
      Event.commit c xs;
    ]
  in
  let tail =
    List.concat_map
      (fun i ->
        let d = Activity.update (Fmt.str "d%d" i) in
        [
          Event.invoke d xs (Intset.insert (i mod 7));
          Event.respond d xs Value.ok;
          Event.commit d xs;
        ])
      (List.init extras (fun i -> i))
  in
  (Spec_env.of_list [ (xs, Intset.spec) ], head @ tail)

let serializability_section ~quick =
  let na, ops_per = if quick then (4, 2) else (7, 3) in
  let env, events = serializability_events ~activities:na ~ops_per in
  let n = List.length events in
  let witnesses = ref 0 in
  let (), one_shot_ms =
    wall_ms (fun () ->
        let h = ref History.empty in
        List.iter
          (fun e ->
            h := History.append !h e;
            match Serializability.serializable env (History.perm !h) with
            | Some _ -> incr witnesses
            | None -> ())
          events)
  in
  (* Same growing re-check through [Serializability.Incremental], which
     caches the last witness and validates it with one linear block
     fold before falling back to the full search. *)
  let inc_witnesses = ref 0 in
  let (), incremental_ms =
    wall_ms (fun () ->
        let inc = Serializability.Incremental.create env in
        let h = ref History.empty in
        List.iter
          (fun e ->
            h := History.append !h e;
            match Serializability.Incremental.check inc (History.perm !h) with
            | Some _ -> incr inc_witnesses
            | None -> ())
          events)
  in
  let extras = if quick then 6 else 12 in
  let cenv, cevents = contended_serializability_events ~extras in
  let c_full = ref 0 and c_inc = ref 0 in
  let (), c_full_ms =
    wall_ms (fun () ->
        let h = ref History.empty in
        List.iter
          (fun e ->
            h := History.append !h e;
            match Serializability.serializable cenv (History.perm !h) with
            | Some _ -> incr c_full
            | None -> ())
          cevents)
  in
  let (), c_inc_ms =
    wall_ms (fun () ->
        let inc = Serializability.Incremental.create cenv in
        let h = ref History.empty in
        List.iter
          (fun e ->
            h := History.append !h e;
            match Serializability.Incremental.check inc (History.perm !h) with
            | Some _ -> incr c_inc
            | None -> ())
          cevents)
  in
  J.Obj
    [
      ("events", J.Num (float_of_int n));
      ("activities", J.Num (float_of_int na));
      ("prefixes_with_witness", J.Num (float_of_int !witnesses));
      ("one_shot_ms", J.Num one_shot_ms);
      ("incremental_ms", J.Num incremental_ms);
      ( "incremental_speedup",
        J.Num (if incremental_ms > 0. then one_shot_ms /. incremental_ms else 0.)
      );
      ("incremental_agrees", J.Bool (!inc_witnesses = !witnesses));
      ("contended_events", J.Num (float_of_int (List.length cevents)));
      ("contended_activities", J.Num (float_of_int (extras + 2)));
      ("contended_full_ms", J.Num c_full_ms);
      ("contended_incremental_ms", J.Num c_inc_ms);
      ( "contended_incremental_speedup",
        J.Num (if c_inc_ms > 0. then c_full_ms /. c_inc_ms else 0.) );
      ("contended_agrees", J.Bool (!c_full = !c_inc));
    ]

let sim_section ~quick =
  let duration = if quick then 300 else 1200 in
  let accounts = 16 in
  let scenario protocol pname clients =
    let sys = build_accounts protocol (Workload.account_ids accounts) in
    let w = Workload.banking ~accounts ~audit_fraction:0.15 () in
    let config =
      {
        Driver.default_config with
        clients;
        duration;
        seed = 5;
        max_restarts = 6;
      }
    in
    let o, run_wall = wall_ms (fun () -> Driver.run ~config sys w) in
    let h = System.history sys in
    (* [precedes] of a long multi-thousand-activity run is quadratic in
       its OUTPUT (every later activity follows every earlier commit),
       so the analysis phase takes it over a bounded tail window; the
       whole-history projections and the well-formedness scan run in
       full. *)
    let tail_window =
      let es = History.to_list h in
      let n = List.length es in
      let rec drop k l = if k <= 0 then l else drop (k - 1) (List.tl l) in
      History.of_list (if n > 300 then drop (n - 300) es else es)
    in
    let (n_acts, n_perm, n_prec, wf, n_view), analyze_wall =
      wall_ms (fun () ->
          let acts = History.activities h in
          let n_acts = List.length acts in
          let p = History.length (History.perm h) in
          let prec = List.length (History.precedes tail_window) in
          let wf = Wellformed.is_well_formed Wellformed.Base h in
          (* View extraction: materialize h|a for every activity and
             h|x for every object — the per-transaction/per-object
             views that conflict and serializability analyses consume
             (serializability's block computation is exactly the
             per-activity pass). *)
          let n_view =
            List.fold_left
              (fun acc a -> acc + History.length (History.project_activity a h))
              0 acts
            + List.fold_left
                (fun acc x -> acc + History.length (History.project_object x h))
                0 (History.objects h)
          in
          (n_acts, p, prec, wf, n_view))
    in
    J.Obj
      [
        ("name", J.Str (Fmt.str "banking-%s" pname));
        ("clients", J.Num (float_of_int clients));
        ("duration_ticks", J.Num (float_of_int duration));
        ("committed", J.Num (float_of_int o.Driver.committed));
        ("waits", J.Num (float_of_int o.Driver.waits));
        ("throughput_per_1000_ticks", J.Num (Driver.throughput o));
        ("run_wall_ms", J.Num run_wall);
        ("analyze_wall_ms", J.Num analyze_wall);
        ("total_wall_ms", J.Num (run_wall +. analyze_wall));
        ("history_events", J.Num (float_of_int (History.length h)));
        ("history_activities", J.Num (float_of_int n_acts));
        ("perm_events", J.Num (float_of_int n_perm));
        ("precedes_pairs", J.Num (float_of_int n_prec));
        ("view_events", J.Num (float_of_int n_view));
        ("well_formed", J.Bool wf);
      ]
  in
  J.List
    (List.concat_map
       (fun clients ->
         [
           scenario `Rw "rw-2pl" clients;
           scenario `Hybrid "hybrid" clients;
         ])
       [ 8; 32 ])

(* The tentpole's quantitative claim: on the contended single-account
   workload drawn from the certifier's own alphabet, the synthesized
   data-dependent table (derived_account) beats the generic
   commutativity protocol on aborts/blocking and closes toward the
   hand-tuned escrow protocol.  Every quantity is virtual-time and a
   pure function of (seed, config), so the per-protocol throughput
   joins the deterministic regression gate. *)
let synth_section ~quick =
  let duration = if quick then 600 else 2000 in
  let headroom = 200 in
  let account_domain = Lint_domain.find_exn "account" in
  let alphabet_workload ~balance_fraction =
    (* Scripts drawn from the synthesis alphabet itself
       ({deposit 5; deposit 2; withdraw 3; withdraw 6; balance}), so
       every invocation hits a compiled (op, result) cell rather than
       the conservative off-alphabet fallback. *)
    let ops =
      Bank_account.[| deposit 5; deposit 2; withdraw 3; withdraw 6 |]
    in
    let acct = Workload.hot_account in
    {
      Workload.name = "synth-alphabet";
      objects = [ acct ];
      generate =
        (fun rng ->
          if Rng.float rng 1.0 < balance_fraction then
            {
              Workload.kind = `Read_only;
              label = "balance";
              steps = [ Workload.step acct Bank_account.balance ];
            }
          else
            let n = 1 + Rng.int rng 3 in
            let steps =
              List.init n (fun _ ->
                  Workload.step acct ops.(Rng.int rng (Array.length ops)))
            in
            { Workload.kind = `Update; label = "synth-mix"; steps });
    }
  in
  let build_derived () =
    let sys = System.create ~policy:`None_ () in
    let log = System.log sys in
    let synthesis = Synthesize.of_domain ~depth:3 account_domain in
    System.add_object sys
      (Synthesize.make_object synthesis log Workload.hot_account);
    sys
  in
  let scenario build pname =
    let sys = build () in
    seed_account sys Workload.hot_account headroom;
    let config =
      {
        Driver.default_config with
        clients = 16;
        duration;
        seed = 23;
        max_restarts = 6;
      }
    in
    let o = Driver.run ~config sys (alphabet_workload ~balance_fraction:0.2) in
    let aborted = o.Driver.aborted_deadlock + o.Driver.aborted_refused in
    let attempts = o.Driver.committed + aborted + o.Driver.gave_up in
    let rate num den = if den = 0 then 0. else float_of_int num /. float_of_int den in
    ( pname,
      o,
      J.Obj
        [
          ("name", J.Str pname);
          ("clients", J.Num (float_of_int config.Driver.clients));
          ("duration_ticks", J.Num (float_of_int duration));
          ("committed", J.Num (float_of_int o.Driver.committed));
          ("aborted", J.Num (float_of_int aborted));
          ("gave_up", J.Num (float_of_int o.Driver.gave_up));
          ("waits", J.Num (float_of_int o.Driver.waits));
          ("abort_rate", J.Num (rate aborted attempts));
          ("waits_per_commit", J.Num (rate o.Driver.waits o.Driver.committed));
          ("throughput_per_1000_ticks", J.Num (Driver.throughput o));
        ] )
  in
  let runs =
    [
      scenario (fun () -> build_accounts `Rw [ Workload.hot_account ]) "rw-2pl";
      scenario
        (fun () -> build_accounts `Commutativity [ Workload.hot_account ])
        "commutativity";
      scenario build_derived "derived_account";
      scenario
        (fun () -> build_accounts `Escrow [ Workload.hot_account ])
        "escrow";
    ]
  in
  let find name =
    let _, o, _ = List.find (fun (n, _, _) -> n = name) runs in
    o
  in
  let commut = find "commutativity" and derived = find "derived_account" in
  let ratio a b = if b = 0 then float_of_int a else float_of_int a /. float_of_int b in
  J.Obj
    [
      ("scenarios", J.List (List.map (fun (_, _, j) -> j) runs));
      (* The headline: synthesized vs generic commutativity on the same
         alphabet — blocking and throughput, same seed and scripts. *)
      ( "derived_vs_commutativity",
        J.Obj
          [
            ( "waits_ratio",
              J.Num (ratio derived.Driver.waits commut.Driver.waits) );
            ( "throughput_ratio",
              J.Num (Driver.throughput derived /. Driver.throughput commut) );
          ] );
    ]

(* Open-loop saturation curve over the sharded runtime: seeded Poisson
   arrivals at a ladder of offered rates against the escrow banking
   group.  Every quantity is virtual-time and a pure function of
   (seed, rate, shards, workload), so the per-rate throughput joins
   the deterministic regression gate; the latency percentiles come
   from the group-wide histogram (per-shard histograms merged). *)
let open_loop_section ~quick =
  let duration = if quick then 800 else 2000 in
  let rates =
    if quick then [ 0.05; 0.2; 0.8 ] else [ 0.05; 0.1; 0.2; 0.4; 0.8 ]
  in
  let shards = 4 in
  let proto =
    match Fault_harness.find_protocol "escrow" with
    | Some p -> p
    | None -> Fmt.failwith "escrow protocol missing from the fault catalog"
  in
  let w = proto.Fault_harness.workload () in
  let scenario rate =
    let group =
      Shard_group.create ~policy:proto.Fault_harness.policy ~seed:5 ~shards ()
    in
    List.iter
      (fun id -> Shard_group.add_object group id proto.Fault_harness.make_object)
      w.Workload.objects;
    let config =
      {
        Sharded_driver.default_open_config with
        rate;
        o_duration = duration;
        o_seed = 5;
      }
    in
    let o, run_wall = wall_ms (fun () -> Sharded_driver.run_open ~config group w) in
    let lat p = Obs.Metrics.Histogram.percentile o.Sharded_driver.latency p in
    J.Obj
      [
        ("rate_per_1000", J.Num (rate *. 1000.));
        ("arrivals", J.Num (float_of_int o.Sharded_driver.arrivals));
        ("committed", J.Num (float_of_int o.Sharded_driver.o_committed));
        ( "committed_multi",
          J.Num (float_of_int o.Sharded_driver.o_committed_multi) );
        ("aborted", J.Num (float_of_int o.Sharded_driver.o_aborted));
        ("in_doubt", J.Num (float_of_int o.Sharded_driver.o_in_doubt));
        ( "throughput_per_1000_ticks",
          J.Num
            (1000.
            *. float_of_int o.Sharded_driver.o_committed
            /. float_of_int o.Sharded_driver.o_ticks) );
        ("latency_p50", J.Num (lat 50.));
        ("latency_p99", J.Num (lat 99.));
        ("latency_mean", J.Num (Obs.Metrics.Histogram.mean o.Sharded_driver.latency));
        ("windows", J.Num (float_of_int (List.length o.Sharded_driver.windows)));
        ("run_wall_ms", J.Num run_wall);
      ]
  in
  J.Obj
    [
      ("shards", J.Num (float_of_int shards));
      ("duration_ticks", J.Num (float_of_int duration));
      ("seed", J.Num 5.);
      ("curve", J.List (List.map scenario rates));
    ]

(* Wall-clock multicore scaling curve: the batched banking workload at
   domains 1/2/4/8 over an 8-shard group with group commit on and a
   1ms simulated device sync.  Unlike every other section this one
   measures REAL time (Unix.gettimeofday, not Sys.time — the sync is a
   sleep, which CPU time would not see).  The committed history is
   domain-count independent (the per-shard batch order is), so the
   curve isolates pure wall-clock effects.

   Honesty note for single-core runners (like CI containers): the
   speedup does not come from CPU parallelism — it comes from
   overlapping the *blocking* WAL-sync latency across shard domains,
   the classic group-commit/IO-overlap effect.  A sleeping domain
   releases the core, so 4 domains pay for one batch of syncs roughly
   the price of the deepest per-domain pile instead of the sum.  The
   audit-free workload keeps the window full of short transactions so
   every commit wave spans many shards.

   The gate: the 4-domain speedup over 1 domain must stay above
   [mcore_speedup_floor].  Wall clock is noisy, so each rung reports
   the best of [reps] runs; the floor (2.0 against a measured ~3x)
   leaves the rest as margin. *)
let mcore_speedup_floor = 2.0

let multicore_section ~quick =
  let shards = 8 in
  let accounts = 256 in
  let jobs = if quick then 400 else 1200 in
  let inflight = 64 in
  let reps = if quick then 1 else 2 in
  let sync_cost_us = 1000. in
  let workload = Workload.banking ~accounts ~audit_fraction:0.0 () in
  let scenario domains =
    let run () =
      let metrics = Obs.Shard_metrics.create ~shards () in
      let group =
        Shard_group.create ~metrics ~seed:11 ~domains ~group_commit:true
          ~sync_cost:(fun () -> Unix.sleepf (sync_cost_us *. 1e-6))
          ~shards ()
      in
      List.iter
        (fun x ->
          Shard_group.add_object group x (fun log id ->
              Op_locking.rw log id (module Bank_account)))
        (Workload.account_ids accounts);
      let config =
        { Mcore_driver.default_config with jobs; inflight; seed = 11 }
      in
      let o =
        Mcore_driver.run ~config ~now:Unix.gettimeofday group workload
      in
      let mailbox_max =
        List.fold_left
          (fun acc s -> max acc (Shard_group.mailbox_max_depth group s))
          0
          (List.init shards Fun.id)
      in
      Shard_group.shutdown group;
      (o, metrics, mailbox_max)
    in
    let best = ref (run ()) in
    for _ = 2 to reps do
      let ((o, _, _) as r) = run () in
      let b, _, _ = !best in
      if o.Mcore_driver.elapsed < b.Mcore_driver.elapsed then best := r
    done;
    let o, metrics, mailbox_max = !best in
    let batch = Obs.Shard_metrics.group_commit_batch metrics in
    ( o.Mcore_driver.elapsed,
      [
        ("domains", J.Num (float_of_int domains));
        ("committed", J.Num (float_of_int o.Mcore_driver.committed));
        ("committed_multi", J.Num (float_of_int o.Mcore_driver.committed_multi));
        ("rounds", J.Num (float_of_int o.Mcore_driver.rounds));
        ("waits", J.Num (float_of_int o.Mcore_driver.waits));
        ("elapsed_s", J.Num o.Mcore_driver.elapsed);
        ("throughput_txn_s", J.Num o.Mcore_driver.throughput);
        ("syncs_per_commit", J.Num (Obs.Shard_metrics.syncs_per_commit metrics));
        ("batch_mean", J.Num (Obs.Metrics.Histogram.mean batch));
        ("batch_p95", J.Num (Obs.Metrics.Histogram.percentile batch 95.));
        ("mailbox_max_depth", J.Num (float_of_int mailbox_max));
      ] )
  in
  let rungs = List.map scenario [ 1; 2; 4; 8 ] in
  let base = match rungs with (e, _) :: _ -> e | [] -> assert false in
  let curve =
    List.map
      (fun (elapsed, fields) ->
        let speedup = if elapsed > 0. then base /. elapsed else 0. in
        J.Obj (fields @ [ ("speedup_vs_1", J.Num speedup) ]))
      rungs
  in
  J.Obj
    [
      ("shards", J.Num (float_of_int shards));
      ("accounts", J.Num (float_of_int accounts));
      ("jobs", J.Num (float_of_int jobs));
      ("inflight", J.Num (float_of_int inflight));
      ("sync_cost_us", J.Num sync_cost_us);
      ("reps", J.Num (float_of_int reps));
      ("speedup_floor_4", J.Num mcore_speedup_floor);
      ("curve", J.List curve);
    ]

(* Restart replay work with and without fuzzy checkpoints, at the same
   log.  One checkpointing group (archiving its truncated WAL prefixes
   so the full log survives) takes seeded traffic; one shard then
   crashes, and recovery runs twice into fresh systems: once
   checkpoint-aware (replays the checkpoint plus the log tail) and once
   against the reconstructed full log.  Replayed-record counts are
   deterministic, seeded quantities, so the improvement ratio
   full/tail is gated with an absolute floor like the multicore
   speedup; the wall-clock durations ride along as advisory. *)
let recovery_improvement_floor = 2.0

let recovery_section ~quick =
  let duration = if quick then 600 else 1500 in
  let shards = 3 in
  let every = 40 in
  let proto =
    match Fault_harness.find_protocol "escrow" with
    | Some p -> p
    | None -> Fmt.failwith "escrow protocol missing from the fault catalog"
  in
  let w = proto.Fault_harness.workload () in
  let group =
    Shard_group.create ~policy:proto.Fault_harness.policy ~seed:9 ~shards
      ~checkpoint:{ Shard_group.default_checkpoint with every; archive = true }
      ()
  in
  List.iter
    (fun id -> Shard_group.add_object group id proto.Fault_harness.make_object)
    w.Workload.objects;
  let config = { Sharded_driver.default_config with clients = 4; duration; seed = 9 } in
  ignore (Sharded_driver.run ~config group w);
  let victim = 1 in
  let segments = Shard_group.archived_segments group victim in
  let files = Shard_group.checkpoint_files group victim in
  let text = Shard_group.crash_shard group victim in
  let records_of t =
    match Wal.decode_records t with
    | Ok (rs, _) -> rs
    | Error e -> Fmt.failwith "recovery bench: WAL decode: %a" Wal.pp_error e
  in
  let full = List.concat_map records_of segments @ records_of text in
  let full_text = Wal.encode_records ~label:(Fmt.str "shard-%d" victim) full in
  let fresh () =
    let sys = System.create ~policy:proto.Fault_harness.policy () in
    List.iter
      (fun id ->
        System.add_object sys
          (proto.Fault_harness.make_object (System.log sys) id))
      w.Workload.objects;
    sys
  in
  let order =
    match proto.Fault_harness.policy with
    | `None_ -> Recovery.Commit_order
    | _ -> Recovery.Timestamp_order
  in
  let ckpt_report, ckpt_wall =
    wall_ms (fun () ->
        match
          Recovery.restore_checkpointed ~checkpoints:files order (fresh ())
            text
        with
        | Ok r -> r
        | Error f ->
          Fmt.failwith "recovery bench: checkpointed restore: %a"
            Recovery.pp_failure f)
  in
  let full_report, full_wall =
    wall_ms (fun () ->
        match Recovery.restore_shard order (fresh ()) full_text with
        | Ok r -> r
        | Error f ->
          Fmt.failwith "recovery bench: full restore: %a" Recovery.pp_failure f)
  in
  let replayed_full = List.length full in
  let replayed_ckpt = ckpt_report.Recovery.replayed_records in
  let improvement =
    if replayed_ckpt > 0 then
      float_of_int replayed_full /. float_of_int replayed_ckpt
    else 0.
  in
  let covered =
    match ckpt_report.Recovery.source with
    | Recovery.From_checkpoint { covered } -> covered
    | Recovery.Full_replay ->
      Fmt.failwith
        "recovery bench: recovery fell back to a full replay — no usable \
         checkpoint at crash time"
  in
  J.Obj
    [
      ("shards", J.Num (float_of_int shards));
      ("duration_ticks", J.Num (float_of_int duration));
      ("checkpoint_every", J.Num (float_of_int every));
      ("seed", J.Num 9.);
      ("log_records", J.Num (float_of_int replayed_full));
      ("covered", J.Num (float_of_int covered));
      ("tail_records", J.Num (float_of_int replayed_ckpt));
      ( "txns_replayed",
        J.Num
          (float_of_int full_report.Recovery.base.Recovery.replayed) );
      ("replay_improvement", J.Num improvement);
      ("improvement_floor", J.Num recovery_improvement_floor);
      ("checkpointed_wall_ms", J.Num ckpt_wall);
      ("full_wall_ms", J.Num full_wall);
    ]

(* Replication: the read-scaling claim and the failover sweep.

   Read scaling is a virtual-cost measure: every snapshot read costs
   one unit on the node that serves it, so a tier that spreads R reads
   over three replicas has a read capacity of R / busiest-node — 3.0x
   a primary that serves everything, degraded by every read that
   bounces back to the primary.  The quantity is a function of (seed,
   config): deterministic, so the floor below is a real gate, not a
   wall-clock guess.

   The failover sweep is the drill of `weihl replica`: seeded
   schedules of traffic with 2PC faults, lossy shipping, staged
   replica faults and forced promotions.  The committed counts must
   survive every promotion, no replica may ever serve a stale read,
   and every final replica projection must match its primary. *)
let replication_read_floor = 2.0

let replication_section ~quick =
  let duration = if quick then 400 else 800 in
  let shards = 3 and replicas = 3 in
  let nreads = if quick then 60 else 150 in
  let proto =
    match Fault_harness.find_protocol "hybrid" with
    | Some p -> p
    | None -> Fmt.failwith "hybrid protocol missing from the fault catalog"
  in
  let w = proto.Fault_harness.workload () in
  let group =
    Shard_group.create ~policy:proto.Fault_harness.policy ~seed:11 ~shards ()
  in
  List.iter
    (fun id -> Shard_group.add_object group id proto.Fault_harness.make_object)
    w.Workload.objects;
  let tier =
    Replica_tier.create ~seed:11 ~replicas
      ~make_object:proto.Fault_harness.make_object group
  in
  let on_commit g gt ~nth_multi:_ =
    let r = Shard_group.commit g gt in
    Replica_tier.pump tier;
    r
  in
  let config =
    { Sharded_driver.default_config with clients = 4; duration; seed = 11 }
  in
  ignore (Sharded_driver.run ~config ~on_commit group w);
  Replica_tier.sync tier;
  let rng = Rng.create 1107 in
  let read_steps () =
    let rec go n =
      if n = 0 then None
      else
        let s = w.Workload.generate rng in
        if s.Workload.kind = `Read_only then
          Some
            (List.map
               (fun st -> (st.Workload.obj, st.Workload.op))
               s.Workload.steps)
        else go (n - 1)
    in
    go 100
  in
  let issued = ref 0 in
  let (), read_wall =
    wall_ms (fun () ->
        for _ = 1 to nreads do
          match read_steps () with
          | None -> ()
          | Some steps -> (
            incr issued;
            match Replica_tier.read tier steps with
            | Ok _ -> ()
            | Error e -> Fmt.failwith "replication bench: read failed: %s" e)
        done)
  in
  let served = List.init replicas (fun i -> Replica_tier.reads_at tier ~replica:i) in
  let primary_served = Replica_tier.reads_primary tier in
  let busiest = List.fold_left max primary_served served in
  let scaling =
    if busiest > 0 then float_of_int !issued /. float_of_int busiest else 0.
  in
  Shard_group.shutdown group;
  (* The failover sweep. *)
  let schedules = if quick then 20 else 100 in
  let seeds = List.init schedules (fun i -> i + 1) in
  let r = Replica_drill.run_many ~quick ~shards ~replicas ~seeds () in
  J.Obj
    [
      ("shards", J.Num (float_of_int shards));
      ("replicas", J.Num (float_of_int replicas));
      ("duration_ticks", J.Num (float_of_int duration));
      ("seed", J.Num 11.);
      ("reads", J.Num (float_of_int !issued));
      ( "replica_served",
        J.List (List.map (fun n -> J.Num (float_of_int n)) served) );
      ("primary_served", J.Num (float_of_int primary_served));
      ("busiest_reads", J.Num (float_of_int busiest));
      ("read_scaling", J.Num scaling);
      ("read_scaling_floor", J.Num replication_read_floor);
      ("read_wall_ms", J.Num read_wall);
      ( "failover",
        J.Obj
          [
            ("schedules", J.Num (float_of_int r.Replica_drill.schedules));
            ("committed", J.Num (float_of_int r.Replica_drill.r_committed));
            ("reads", J.Num (float_of_int r.Replica_drill.r_reads));
            ( "replica_served",
              J.Num (float_of_int r.Replica_drill.r_replica_served) );
            ("bounced", J.Num (float_of_int r.Replica_drill.r_bounced));
            ("lost_commits", J.Num (float_of_int r.Replica_drill.r_lost));
            ("stale_served", J.Num (float_of_int r.Replica_drill.r_stale));
            ("diverged", J.Num (float_of_int r.Replica_drill.r_diverged));
            ("promotions", J.Num (float_of_int r.Replica_drill.r_promotions));
            ("resyncs", J.Num (float_of_int r.Replica_drill.r_resyncs));
            ( "damaged_segments",
              J.Num (float_of_int r.Replica_drill.r_damaged) );
          ] );
    ]

(* --- the regression gate ------------------------------------------- *)

let jfield name = function
  | J.Obj fields -> List.assoc_opt name fields
  | _ -> None

let jnum = function Some (J.Num n) -> Some n | _ -> None
let jstr = function Some (J.Str s) -> Some s | _ -> None

(* Regressions are judged only on deterministic, seeded quantities: a
   sim scenario's virtual-time throughput is a function of (seed,
   config, protocol), not of the machine, so a drop below the
   tolerance is a real behavioural change — an admission-control or
   scheduling regression — never runner noise.  Wall-clock
   micro-benchmark numbers stay advisory. *)
let regression_tolerance = 0.5

let compare_to_baseline ~current ~base =
  match (jstr (jfield "mode" base), jstr (jfield "mode" current)) with
  | Some bm, Some cm when bm <> cm ->
    Fmt.epr
      "warning: baseline mode %s does not match this run's %s; regression \
       gate skipped@."
      bm cm;
    []
  | _ ->
    let throughput v = jnum (jfield "throughput_per_1000_ticks" v) in
    let sim_regressions =
      match (jfield "sim" base, jfield "sim" current) with
      | Some (J.List bs), Some (J.List cs) ->
        List.filter_map
          (fun b ->
            match (jstr (jfield "name" b), jnum (jfield "clients" b)) with
            | Some name, Some clients -> (
              let matches c =
                jstr (jfield "name" c) = Some name
                && jnum (jfield "clients" c) = Some clients
              in
              match List.find_opt matches cs with
              | None ->
                Some
                  (Fmt.str "scenario %s@%g clients missing from this run" name
                     clients)
              | Some c -> (
                match (throughput b, throughput c) with
                | Some bt, Some ct
                  when bt > 0. && ct < bt *. regression_tolerance ->
                  Some
                    (Fmt.str
                       "%s@%g clients: throughput %.1f fell below %.0f%% of \
                        baseline %.1f"
                       name clients ct
                       (regression_tolerance *. 100.)
                       bt)
                | _ -> None))
            | _ -> None)
          bs
      | _ -> []
    in
    (* The synth scenarios gate per protocol, the same relative
       throughput check as sim.  Baselines from before the section
       existed simply skip it. *)
    let synth_regressions =
      let scenarios v =
        match Option.bind (jfield "synth" v) (jfield "scenarios") with
        | Some (J.List s) -> Some s
        | _ -> None
      in
      match (scenarios base, scenarios current) with
      | Some bs, Some cs ->
        List.filter_map
          (fun b ->
            match jstr (jfield "name" b) with
            | None -> None
            | Some name -> (
              let matches c = jstr (jfield "name" c) = Some name in
              match List.find_opt matches cs with
              | None ->
                Some (Fmt.str "synth scenario %s missing from this run" name)
              | Some c -> (
                match (throughput b, throughput c) with
                | Some bt, Some ct
                  when bt > 0. && ct < bt *. regression_tolerance ->
                  Some
                    (Fmt.str
                       "synth %s: throughput %.1f fell below %.0f%% of \
                        baseline %.1f"
                       name ct
                       (regression_tolerance *. 100.)
                       bt)
                | _ -> None)))
          bs
      | _ -> []
    in
    (* The open-loop knee curve gates the same way: per offered rate,
       virtual-time throughput against the baseline.  Baselines from
       before the section existed simply skip it. *)
    let open_loop_regressions =
      let curve v =
        match Option.bind (jfield "open_loop" v) (jfield "curve") with
        | Some (J.List c) -> Some c
        | _ -> None
      in
      match (curve base, curve current) with
      | Some bs, Some cs ->
        List.filter_map
          (fun b ->
            match jnum (jfield "rate_per_1000" b) with
            | None -> None
            | Some rate -> (
              let matches c = jnum (jfield "rate_per_1000" c) = Some rate in
              match List.find_opt matches cs with
              | None ->
                Some
                  (Fmt.str "open-loop rate %g/1000t missing from this run" rate)
              | Some c -> (
                match (throughput b, throughput c) with
                | Some bt, Some ct
                  when bt > 0. && ct < bt *. regression_tolerance ->
                  Some
                    (Fmt.str
                       "open-loop@%g/1000t: throughput %.1f fell below %.0f%% \
                        of baseline %.1f"
                       rate ct
                       (regression_tolerance *. 100.)
                       bt)
                | _ -> None)))
          bs
      | _ -> []
    in
    (* The multicore gate is absolute, not relative: the current run's
       4-domain wall-clock speedup over 1 domain must clear the floor
       recorded in the section.  It only arms when the baseline also
       has a multicore section, so pre-multicore baselines skip it. *)
    let multicore_regressions =
      match (jfield "multicore" base, jfield "multicore" current) with
      | Some _, Some mc -> (
        let floor_ = jnum (jfield "speedup_floor_4" mc) in
        let speedup_at d =
          match jfield "curve" mc with
          | Some (J.List rungs) ->
            List.find_map
              (fun r ->
                if jnum (jfield "domains" r) = Some (float_of_int d) then
                  jnum (jfield "speedup_vs_1" r)
                else None)
              rungs
          | _ -> None
        in
        match (floor_, speedup_at 4) with
        | Some floor_, Some s when s < floor_ ->
          [
            Fmt.str
              "multicore: 4-domain speedup %.2fx fell below the %.1fx floor"
              s floor_;
          ]
        | Some _, Some _ -> []
        | _ -> [ "multicore: curve is missing its 4-domain rung" ])
      | _ -> []
    in
    (* The recovery gate is absolute like the multicore one: the
       current run's full-log/tail replay-work ratio must clear the
       floor recorded in the section.  Pre-checkpointing baselines
       have no recovery section and skip it. *)
    let recovery_regressions =
      match (jfield "recovery" base, jfield "recovery" current) with
      | Some _, Some rc -> (
        match
          (jnum (jfield "improvement_floor" rc),
           jnum (jfield "replay_improvement" rc))
        with
        | Some floor_, Some ratio when ratio < floor_ ->
          [
            Fmt.str
              "recovery: replay improvement %.2fx fell below the %.1fx floor"
              ratio floor_;
          ]
        | Some _, Some _ -> []
        | _ -> [ "recovery: section is missing its improvement ratio" ])
      | _ -> []
    in
    (* The replication gate is absolute like the multicore and
       recovery ones: the 3-replica read-scaling ratio must clear the
       floor recorded in the section, and the failover sweep must be
       spotless — zero lost commits, zero stale reads served, zero
       divergences.  Pre-replication baselines skip it. *)
    let replication_regressions =
      match (jfield "replication" base, jfield "replication" current) with
      | Some _, Some rp ->
        let scaling =
          match
            (jnum (jfield "read_scaling_floor" rp),
             jnum (jfield "read_scaling" rp))
          with
          | Some floor_, Some s when s < floor_ ->
            [
              Fmt.str
                "replication: 3-replica read scaling %.2fx fell below the \
                 %.1fx floor"
                s floor_;
            ]
          | Some _, Some _ -> []
          | _ -> [ "replication: section is missing its read-scaling ratio" ]
        in
        let sweep =
          match jfield "failover" rp with
          | None -> [ "replication: section is missing its failover sweep" ]
          | Some fo ->
            List.filter_map
              (fun name ->
                match jnum (jfield name fo) with
                | Some 0. -> None
                | Some n ->
                  Some
                    (Fmt.str "replication: failover sweep reported %g %s"
                       n
                       (String.map
                          (fun c -> if c = '_' then ' ' else c)
                          name))
                | None ->
                  Some
                    (Fmt.str "replication: failover sweep is missing %s" name))
              [ "lost_commits"; "stale_served"; "diverged" ]
        in
        scaling @ sweep
      | _ -> []
    in
    sim_regressions @ synth_regressions @ open_loop_regressions
    @ multicore_regressions @ recovery_regressions @ replication_regressions

let json_mode ~file ~quick ~baseline =
  let sections =
    [
      ("schema", J.Str "weihl-bench/1");
      ("mode", J.Str (if quick then "quick" else "full"));
      ("history_ops", history_ops_section ~quick);
      ("serializability", serializability_section ~quick);
      ("sim", sim_section ~quick);
      ("synth", synth_section ~quick);
      ("open_loop", open_loop_section ~quick);
      ("multicore", multicore_section ~quick);
      ("recovery", recovery_section ~quick);
      ("replication", replication_section ~quick);
    ]
  in
  let base =
    match baseline with
    | None -> None
    | Some path -> (
      let ic = open_in path in
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      close_in ic;
      match J.of_string text with
      | Ok v -> Some v
      | Error e ->
        Fmt.epr "warning: could not parse baseline %s: %s@." path e;
        None)
  in
  let sections =
    match base with
    | Some v -> sections @ [ ("seed_baseline", v) ]
    | None -> sections
  in
  let doc = J.Obj sections in
  let oc = open_out file in
  output_string oc (J.to_string doc);
  output_string oc "\n";
  close_out oc;
  Fmt.pr "wrote %s@." file;
  match base with
  | None -> 0
  | Some base -> (
    match compare_to_baseline ~current:doc ~base with
    | [] ->
      Fmt.pr "regression gate: ok (every scenario within %.0f%% of baseline)@."
        (regression_tolerance *. 100.);
      0
    | regressions ->
      Fmt.epr "@.regressions against baseline:@.";
      List.iter (fun r -> Fmt.epr "  %s@." r) regressions;
      1)

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("a1", a1); ("a2", a2); ("a3", a3); ("a4", a4); ("b0", b0);
    ("o1", o1);
  ]

let () =
  let args = Array.to_list Sys.argv in
  let rec parse json quick baseline names = function
    | [] -> (json, quick, baseline, List.rev names)
    | "--json" :: file :: rest -> parse (Some file) quick baseline names rest
    | "--quick" :: rest -> parse json true baseline names rest
    | "--baseline" :: file :: rest -> parse json quick (Some file) names rest
    | name :: rest -> parse json quick baseline (name :: names) rest
  in
  let json, quick, baseline, names = parse None false None [] (List.tl args) in
  match json with
  | Some file -> exit (json_mode ~file ~quick ~baseline)
  | None ->
    let requested =
      match names with [] -> List.map fst experiments | _ -> names
    in
    List.iter
      (fun name ->
        match List.assoc_opt (String.lowercase_ascii name) experiments with
        | Some f -> f ()
        | None ->
          Fmt.epr "unknown experiment %s (have: e1-e7, a1-a4, b0, o1)@." name)
      requested
